//! Family D: static prefetch-plan coverage prediction.
//!
//! Where family P (`plan_check`) re-proves the *claims* a plan makes, this
//! module predicts its *value*: will each insertion actually warm the L1-I,
//! or is it dead weight? Every insertion is classified into exactly one
//! [`InsertionClass`] using the dominator tree, the natural-loop forest,
//! and shortest-path distances — no simulation:
//!
//! * **Dead** (`D001`, error) — the anchor or target was never executed,
//!   the anchor is unreachable from the entry, or no forward path leads
//!   from the anchor to the target. The prefetch can never be useful; a
//!   plan containing one is rejected outright by `swip-serve` admission.
//! * **Redundant** (`D002`, warning) — a block on the anchor's dominator
//!   chain already touches the target line within the reuse window, so the
//!   line is resident on *every* path reaching the anchor.
//! * **Late** (`D003`, warning) — the static shortest-path distance from
//!   the anchor to the target is below the configured miss latency: demand
//!   fetch arrives before (or with) the prefetch.
//! * **Clobbering** (`D004`, warning) — the anchor sits in a natural loop
//!   whose body already fills the target's L1-I set with lines it keeps
//!   re-touching; the prefetch evicts one of them.
//!
//! Classification order is dead → redundant → late → clobbering (the first
//! matching class wins): redundancy makes timeliness moot, and both make
//! eviction pressure moot. The aggregate [`PredictedCoverage`] weights each
//! site by its anchor block's execution count so predictions are comparable
//! with the dynamic counters a [`RunReport`](swip_report) carries — that
//! comparison is `swip analyze --predict-vs` (see [`crate::predict`]).
//!
//! The model's assumptions (and therefore its error sources) are documented
//! in DESIGN.md §14.

use std::collections::{HashMap, HashSet};

use swip_asmdb::{BlockId, Cfg, Plan, ShiftMap};

use crate::diag::{Diagnostic, Location, Severity};
use crate::dominators::DomTree;
use crate::loops::{LoopForest, NaturalLoop};
use crate::plan_check::target_entry_distances;

/// Parameters of the static cache/latency model.
///
/// Defaults mirror the `sunny_cove_like` simulator configuration: a 32 KiB
/// 8-way L1-I (64 sets of 64-byte lines) and a 34-cycle LLC round trip
/// (`llc_round_trip()`), read as "a prefetch issued fewer than 34
/// instructions ahead of its target is late" under the ~1 IPC the paper's
/// front-end-bound workloads sustain.
#[derive(Copy, Clone, Debug)]
pub struct CoverageConfig {
    /// Instructions a prefetch must lead its target by to hide an LLC miss.
    pub miss_latency: u64,
    /// Dominator-chain distance (instructions) within which an earlier
    /// touch of the target line is assumed still resident.
    pub reuse_window: u64,
    /// L1-I set count (capacity / line size / ways).
    pub l1i_sets: u64,
    /// L1-I associativity.
    pub l1i_ways: usize,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            miss_latency: 34,
            reuse_window: 2048,
            l1i_sets: 64,
            l1i_ways: 8,
        }
    }
}

/// The predicted fate of one planned insertion.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum InsertionClass {
    /// Predicted to warm the cache ahead of demand.
    Useful,
    /// Can never fire usefully (rule `D001`).
    Dead,
    /// Target line already resident on all reaching paths (rule `D002`).
    Redundant,
    /// Fires too close to the target to hide the miss (rule `D003`).
    Late,
    /// Evicts a line the surrounding loop keeps re-touching (rule `D004`).
    Clobbering,
}

impl InsertionClass {
    /// Lower-case class name used in counters and messages.
    pub fn name(self) -> &'static str {
        match self {
            InsertionClass::Useful => "useful",
            InsertionClass::Dead => "dead",
            InsertionClass::Redundant => "redundant",
            InsertionClass::Late => "late",
            InsertionClass::Clobbering => "clobbering",
        }
    }
}

/// Machine-readable summary of a plan evaluation: site counts per class,
/// execution-weighted counts (each site weighted by its anchor block's
/// `exec_count`), and line coverage.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PredictedCoverage {
    /// Total planned insertion sites.
    pub sites: u64,
    /// Sites predicted useful.
    pub useful_sites: u64,
    /// Sites classified dead (`D001`).
    pub dead_sites: u64,
    /// Sites classified redundant (`D002`).
    pub redundant_sites: u64,
    /// Sites classified late (`D003`).
    pub late_sites: u64,
    /// Sites classified clobbering (`D004`).
    pub clobbering_sites: u64,
    /// Predicted dynamic prefetch executions (Σ anchor exec counts).
    pub predicted_executions: u64,
    /// Execution-weighted useful predictions.
    pub useful_executions: u64,
    /// Execution-weighted dead predictions (always 0 when anchors exist).
    pub dead_executions: u64,
    /// Execution-weighted redundant predictions.
    pub redundant_executions: u64,
    /// Execution-weighted late predictions.
    pub late_executions: u64,
    /// Execution-weighted clobbering predictions.
    pub clobbering_executions: u64,
    /// Predicted executions that find their target line already resident
    /// (the steady-state duplicate model; see [`duplicate_rate`]).
    ///
    /// [`duplicate_rate`]: PredictedCoverage::duplicate_rate
    pub duplicate_executions: u64,
    /// Distinct target lines the plan aims at.
    pub targeted_lines: u64,
    /// Distinct target lines with at least one useful site.
    pub covered_lines: u64,
}

impl PredictedCoverage {
    /// Fraction of targeted lines with a useful site (1.0 for an empty
    /// plan: nothing was left uncovered).
    pub fn coverage_ratio(&self) -> f64 {
        if self.targeted_lines == 0 {
            1.0
        } else {
            self.covered_lines as f64 / self.targeted_lines as f64
        }
    }

    /// Fraction of predicted executions from sites *classified* redundant
    /// (`D002`, the dominating-touch argument). A per-site measure: every
    /// execution of a redundant site counts, none of a useful site's do.
    pub fn redundant_rate(&self) -> f64 {
        if self.predicted_executions == 0 {
            0.0
        } else {
            self.redundant_executions as f64 / self.predicted_executions as f64
        }
    }

    /// Predicted fraction of executed prefetches that find their line
    /// already resident (0.0 when nothing executes) — the number to hold
    /// against the measured `l1i.prefetch_hits / ftq.swpf_executed`.
    ///
    /// Unlike [`redundant_rate`](PredictedCoverage::redundant_rate), this
    /// is a steady-state estimate over *all* sites: even a useful site's
    /// later executions mostly re-request a line its first execution (or a
    /// demand fetch) already installed, unless L1-I set pressure keeps
    /// evicting it.
    pub fn duplicate_rate(&self) -> f64 {
        if self.predicted_executions == 0 {
            0.0
        } else {
            self.duplicate_executions as f64 / self.predicted_executions as f64
        }
    }

    /// The summary as stable `(name, value)` counter pairs — the shape
    /// embedded in run reports and compared by `--predict-vs`.
    pub fn counter_pairs(&self) -> Vec<(String, u64)> {
        vec![
            ("sites".into(), self.sites),
            ("useful_sites".into(), self.useful_sites),
            ("dead_sites".into(), self.dead_sites),
            ("redundant_sites".into(), self.redundant_sites),
            ("late_sites".into(), self.late_sites),
            ("clobbering_sites".into(), self.clobbering_sites),
            ("predicted_executions".into(), self.predicted_executions),
            ("useful_executions".into(), self.useful_executions),
            ("dead_executions".into(), self.dead_executions),
            ("redundant_executions".into(), self.redundant_executions),
            ("late_executions".into(), self.late_executions),
            ("clobbering_executions".into(), self.clobbering_executions),
            ("duplicate_executions".into(), self.duplicate_executions),
            ("targeted_lines".into(), self.targeted_lines),
            ("covered_lines".into(), self.covered_lines),
        ]
    }

    /// Rebuilds a summary from counter pairs (ignoring unknown names, so
    /// the schema can grow).
    pub fn from_counter_pairs(pairs: &[(String, u64)]) -> PredictedCoverage {
        let mut c = PredictedCoverage::default();
        for (name, value) in pairs {
            match name.as_str() {
                "sites" => c.sites = *value,
                "useful_sites" => c.useful_sites = *value,
                "dead_sites" => c.dead_sites = *value,
                "redundant_sites" => c.redundant_sites = *value,
                "late_sites" => c.late_sites = *value,
                "clobbering_sites" => c.clobbering_sites = *value,
                "predicted_executions" => c.predicted_executions = *value,
                "useful_executions" => c.useful_executions = *value,
                "dead_executions" => c.dead_executions = *value,
                "redundant_executions" => c.redundant_executions = *value,
                "late_executions" => c.late_executions = *value,
                "clobbering_executions" => c.clobbering_executions = *value,
                "duplicate_executions" => c.duplicate_executions = *value,
                "targeted_lines" => c.targeted_lines = *value,
                "covered_lines" => c.covered_lines = *value,
                _ => {}
            }
        }
        c
    }
}

/// Result of statically evaluating a plan: a class per insertion (parallel
/// to `plan.insertions`), the aggregate summary, and the D-family
/// diagnostics.
#[derive(Clone, Debug)]
pub struct PlanEvaluation {
    /// Predicted class of each insertion, in plan order.
    pub classes: Vec<InsertionClass>,
    /// Aggregate, execution-weighted summary.
    pub coverage: PredictedCoverage,
    /// One `D001`–`D004` diagnostic per non-useful insertion.
    pub diagnostics: Vec<Diagnostic>,
}

impl PlanEvaluation {
    /// Rule ids of the fatal diagnostics (currently only `D001`), deduped
    /// and sorted — the list a rejected `swip-serve` submission reports.
    pub fn fatal_rules(&self) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.rule)
            .collect();
        rules.sort_unstable();
        rules.dedup();
        rules
    }
}

/// Statically classifies every insertion of `plan` against `cfg`.
///
/// `entry` is the block containing the first executed instruction; passing
/// `None` disables the reachability, redundancy, and clobbering arguments
/// (which all need a dominator tree), leaving only path-existence and
/// timeliness.
pub fn evaluate_plan(
    cfg: &Cfg,
    entry: Option<BlockId>,
    plan: &Plan,
    config: &CoverageConfig,
) -> PlanEvaluation {
    let dom = entry.map(|e| DomTree::dominators(cfg, e));
    let loops = dom.as_ref().map(|d| LoopForest::detect(cfg, d));

    let mut dist_cache: HashMap<u64, Option<Vec<Option<u64>>>> = HashMap::new();
    // Per-loop set-pressure maps, built lazily: loop index → (L1-I set →
    // distinct lines the loop body touches in that set).
    let mut loop_lines: HashMap<BlockId, HashMap<u64, HashSet<u64>>> = HashMap::new();

    // The duplicate model reasons in the *rewritten* address space: the
    // plan's own insertions shift every later address, moving lines across
    // cache sets exactly as reassembly would ("shifting the cache lines'
    // contents", the paper's bloat effect). Classification above stays in
    // the original space — D-rules are claims about the plan as written.
    let shift = ShiftMap::from_plan(plan);
    // Per-line touch counts and per-set membership (rewritten space), the
    // inputs to the gap/churn residency estimate (DESIGN.md §14).
    let mut line_exec: HashMap<u64, u64> = HashMap::new();
    if !plan.insertions.is_empty() {
        for (_, block) in cfg.blocks() {
            for pc in &block.pcs {
                let line = shift.remap_pc(*pc).line().number();
                let e = line_exec.entry(line).or_insert(0);
                *e = (*e).max(block.exec_count);
            }
        }
    }
    let mut set_lines: HashMap<u64, Vec<u64>> = HashMap::new();
    for &line in line_exec.keys() {
        set_lines
            .entry(line % config.l1i_sets)
            .or_default()
            .push(line);
    }
    // Prefetch pressure per (rewritten) target line: execution weight from
    // sites already known resident (redundant) vs the rest.
    let mut line_weights: HashMap<u64, (u64, u64)> = HashMap::new();

    let mut classes = Vec::with_capacity(plan.insertions.len());
    let mut diagnostics = Vec::new();
    let mut useful_lines: HashSet<u64> = HashSet::new();
    let mut all_lines: HashSet<u64> = HashSet::new();
    let mut coverage = PredictedCoverage::default();
    let mut duplicate_weight = 0.0f64;

    for (idx, ins) in plan.insertions.iter().enumerate() {
        let loc = Location::Insertion(idx as u64);
        let target_line = ins.target_pc.line().number();
        all_lines.insert(target_line);

        let anchor_block = cfg.block_of(ins.anchor);
        let weight = anchor_block.map_or(0, |b| cfg.block(b).exec_count);

        let (class, why) = classify(
            cfg,
            dom.as_ref(),
            loops.as_ref(),
            &mut dist_cache,
            &mut loop_lines,
            config,
            ins,
            anchor_block,
            target_line,
        );

        match class {
            InsertionClass::Useful => {
                coverage.useful_sites += 1;
                coverage.useful_executions += weight;
                useful_lines.insert(target_line);
            }
            InsertionClass::Dead => {
                coverage.dead_sites += 1;
                coverage.dead_executions += weight;
                diagnostics.push(Diagnostic::new("D001", Severity::Error, loc, why));
            }
            InsertionClass::Redundant => {
                coverage.redundant_sites += 1;
                coverage.redundant_executions += weight;
                diagnostics.push(Diagnostic::new("D002", Severity::Warn, loc, why));
            }
            InsertionClass::Late => {
                coverage.late_sites += 1;
                coverage.late_executions += weight;
                diagnostics.push(Diagnostic::new("D003", Severity::Warn, loc, why));
            }
            InsertionClass::Clobbering => {
                coverage.clobbering_sites += 1;
                coverage.clobbering_executions += weight;
                diagnostics.push(Diagnostic::new("D004", Severity::Warn, loc, why));
            }
        }
        // Group live sites by their rewritten-space target line for the
        // duplicate model below: a redundant site's line is resident on
        // every reaching path by construction; the rest get the
        // steady-state gap/churn residency estimate.
        if class != InsertionClass::Dead {
            let line = shift.remap_target(ins.target_pc).line().number();
            let w = line_weights.entry(line).or_insert((0, 0));
            if class == InsertionClass::Redundant {
                w.0 += weight;
            } else {
                w.1 += weight;
            }
        }
        coverage.sites += 1;
        coverage.predicted_executions += weight;
        classes.push(class);
    }

    for (&line, &(w_redundant, w_other)) in &line_weights {
        duplicate_weight += w_redundant as f64;
        if w_other == 0 {
            continue;
        }
        let r = residency(&line_exec, &set_lines, config, line, w_redundant + w_other);
        duplicate_weight += w_other as f64 * r;
    }
    coverage.duplicate_executions = duplicate_weight.round() as u64;
    coverage.targeted_lines = all_lines.len() as u64;
    coverage.covered_lines = useful_lines.len() as u64;

    PlanEvaluation {
        classes,
        coverage,
        diagnostics,
    }
}

/// Classifies one insertion; returns the class and a diagnostic message
/// (empty for `Useful`).
#[allow(clippy::too_many_arguments)]
fn classify(
    cfg: &Cfg,
    dom: Option<&DomTree>,
    loops: Option<&LoopForest>,
    dist_cache: &mut HashMap<u64, Option<Vec<Option<u64>>>>,
    loop_lines: &mut HashMap<BlockId, HashMap<u64, HashSet<u64>>>,
    config: &CoverageConfig,
    ins: &swip_asmdb::Insertion,
    anchor_block: Option<BlockId>,
    target_line: u64,
) -> (InsertionClass, String) {
    // Dead: anchor never executed.
    let Some(anchor_block) = anchor_block else {
        return (
            InsertionClass::Dead,
            format!("dead insertion: anchor {} is not in the CFG", ins.anchor),
        );
    };
    // Dead: anchor off every path from the entry.
    if let Some(dom) = dom {
        if !dom.is_reachable(anchor_block) {
            return (
                InsertionClass::Dead,
                format!(
                    "dead insertion: anchor {} (block {anchor_block}) is unreachable \
                     from the entry",
                    ins.anchor
                ),
            );
        }
    }
    // Dead: target never executed, or no forward path anchor → target.
    let dists = dist_cache
        .entry(ins.target_pc.raw())
        .or_insert_with(|| target_entry_distances(cfg, ins.target_pc));
    let min_d = match dists {
        None => None,
        Some(dist) => cfg
            .block(anchor_block)
            .succs
            .iter()
            .filter(|&&(s, _)| s < cfg.len())
            .filter_map(|&(s, _)| dist[s])
            .min(),
    };
    let Some(min_d) = min_d else {
        return (
            InsertionClass::Dead,
            format!(
                "dead insertion: no path from anchor {} to target {}",
                ins.anchor, ins.target_pc
            ),
        );
    };

    // Redundant: a dominating block already touched the target line close
    // enough that it is still resident. The dominator chain understates
    // true path length, so the accumulated distance is a lower bound —
    // conservative in the right direction (claims redundancy only when the
    // touch is provably on every path and plausibly recent).
    if let Some(dom) = dom {
        let mut acc: u64 = 0;
        let mut cur = Some(anchor_block);
        while let Some(b) = cur {
            if acc > config.reuse_window {
                break;
            }
            let touches = cfg
                .block(b)
                .pcs
                .iter()
                .any(|pc| pc.line().number() == target_line);
            if touches {
                return (
                    InsertionClass::Redundant,
                    format!(
                        "redundant insertion: dominating block {b} touches line \
                         {target_line:#x} ~{acc} instructions before anchor {}",
                        ins.anchor
                    ),
                );
            }
            acc += cfg.block(b).len() as u64;
            cur = dom.idom(b);
        }
    }

    // Late: even the shortest path to the target is within the miss
    // latency; the demand fetch wins the race.
    if min_d < config.miss_latency {
        return (
            InsertionClass::Late,
            format!(
                "late insertion: target {} is only {min_d} instructions ahead of \
                 anchor {} (< miss latency {})",
                ins.target_pc, ins.anchor, config.miss_latency
            ),
        );
    }

    // Clobbering: the innermost loop around the anchor already saturates
    // the target's L1-I set with lines it re-touches every iteration, and
    // the target is not one of them.
    if let Some(loops) = loops {
        if let Some(l) = loops.innermost(anchor_block) {
            let sets = loop_lines
                .entry(l.header)
                .or_insert_with(|| loop_set_lines(cfg, l, config.l1i_sets));
            let target_set = target_line % config.l1i_sets;
            if let Some(lines) = sets.get(&target_set) {
                if lines.len() >= config.l1i_ways && !lines.contains(&target_line) {
                    return (
                        InsertionClass::Clobbering,
                        format!(
                            "clobbering insertion: the loop at block {} re-touches \
                             {} lines in L1-I set {target_set} (≥ {} ways); \
                             prefetching line {target_line:#x} evicts one",
                            l.header,
                            lines.len(),
                            config.l1i_ways
                        ),
                    );
                }
            }
        }
    }

    (InsertionClass::Useful, String::new())
}

/// Distinct executed lines per L1-I set across the body of loop `l`.
fn loop_set_lines(cfg: &Cfg, l: &NaturalLoop, sets: u64) -> HashMap<u64, HashSet<u64>> {
    let mut by_set: HashMap<u64, HashSet<u64>> = HashMap::new();
    for &b in &l.blocks {
        for pc in &cfg.block(b).pcs {
            let line = pc.line().number();
            by_set.entry(line % sets).or_default().insert(line);
        }
    }
    by_set
}

/// Steady-state probability that a prefetch of `line` (issued `weight`
/// times across all its anchors) finds it already resident.
///
/// Between two consecutive prefetches of the line, every other line of its
/// L1-I set is touched in proportion to its own execution count; the
/// expected distinct-line churn in that gap is `C = Σ min(1, exec(ℓ) /
/// weight)` over the set's other lines. Under LRU the line survives a gap
/// when fewer than `ways` distinct lines intervene, so residency is
/// `min(1, ways / C)` — 1.0 when the set churns slower than the prefetch
/// cadence, decaying once the set cycles faster than the line is renewed.
fn residency(
    line_exec: &HashMap<u64, u64>,
    set_lines: &HashMap<u64, Vec<u64>>,
    config: &CoverageConfig,
    line: u64,
    weight: u64,
) -> f64 {
    let churn: f64 = set_lines
        .get(&(line % config.l1i_sets))
        .map_or(0.0, |lines| {
            lines
                .iter()
                .filter(|&&l| l != line)
                .map(|l| (line_exec[l] as f64 / weight.max(1) as f64).min(1.0))
                .sum()
        });
    if churn <= config.l1i_ways as f64 {
        1.0
    } else {
        config.l1i_ways as f64 / churn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_asmdb::{CfgBlock, Insertion};
    use swip_types::Addr;

    /// Block `i` starts at `base[i]` and holds `lens[i]` instructions at
    /// 4-byte stride.
    fn cfg_of(bases: &[u64], lens: &[usize], edges: &[(usize, usize)]) -> Cfg {
        let mut blocks: Vec<CfgBlock> = bases
            .iter()
            .zip(lens)
            .map(|(&base, &len)| CfgBlock {
                start: Addr::new(base),
                pcs: (0..len).map(|k| Addr::new(base + 4 * k as u64)).collect(),
                exec_count: 10,
                succs: Vec::new(),
                preds: Vec::new(),
                ends_with_branch: false,
            })
            .collect();
        for &(a, b) in edges {
            blocks[a].succs.push((b, 1));
            blocks[b].preds.push((a, 1));
        }
        Cfg::from_parts(blocks)
    }

    fn ins(anchor: u64, target: u64) -> Insertion {
        Insertion {
            anchor: Addr::new(anchor),
            before: true,
            target_pc: Addr::new(target),
            distance: 16,
            reach: 0.9,
        }
    }

    fn plan_of(insertions: Vec<Insertion>) -> Plan {
        Plan {
            targeted_lines: insertions.len(),
            insertions,
            uncovered_lines: 0,
        }
    }

    fn classify_one(cfg: &Cfg, entry: BlockId, i: Insertion) -> (InsertionClass, PlanEvaluation) {
        let eval = evaluate_plan(
            cfg,
            Some(entry),
            &plan_of(vec![i]),
            &CoverageConfig::default(),
        );
        (eval.classes[0], eval)
    }

    /// 0 (32 instrs at 0x0) → 1 (32 at 0x1000) → 2 (32 at 0x2000); 3 is
    /// disconnected at 0x9000.
    fn line_chain() -> Cfg {
        cfg_of(
            &[0x0, 0x1000, 0x2000, 0x9000],
            &[32, 32, 32, 4],
            &[(0, 1), (1, 2)],
        )
    }

    /// Last pc of a 32-instruction block starting at `base`.
    fn block_end(base: u64) -> u64 {
        base + 4 * 31
    }

    #[test]
    fn unknown_anchor_is_dead() {
        let cfg = line_chain();
        let (class, eval) = classify_one(&cfg, 0, ins(0xdead0, 0x2000));
        assert_eq!(class, InsertionClass::Dead);
        assert_eq!(eval.fatal_rules(), vec!["D001"]);
        assert_eq!(eval.coverage.dead_sites, 1);
        assert_eq!(eval.coverage.predicted_executions, 0);
    }

    #[test]
    fn unreachable_anchor_is_dead() {
        let cfg = line_chain();
        // Block 3 (0x9000) has no path from the entry.
        let (class, eval) = classify_one(&cfg, 0, ins(0x900c, 0x2000));
        assert_eq!(class, InsertionClass::Dead);
        assert!(eval.diagnostics[0].message.contains("unreachable"));
    }

    #[test]
    fn pathless_target_is_dead() {
        let cfg = line_chain();
        // Anchor at the end of block 2, target back at block 0 start: no
        // forward path (the chain does not loop).
        let (class, _) = classify_one(&cfg, 0, ins(block_end(0x2000), 0x0));
        assert_eq!(class, InsertionClass::Dead);
    }

    #[test]
    fn far_target_is_useful() {
        let cfg = line_chain();
        // Anchor ends block 0; target is block 2's last instruction: all of
        // block 1 (32) plus block 2's offset (31) = 63 instructions ahead,
        // comfortably past the 34-instruction miss latency.
        let anchor = block_end(0x0);
        let (class, eval) = classify_one(&cfg, 0, ins(anchor, block_end(0x2000)));
        assert_eq!(class, InsertionClass::Useful, "{:?}", eval.diagnostics);
        assert_eq!(eval.coverage.useful_sites, 1);
        assert_eq!(eval.coverage.covered_lines, 1);
        assert_eq!(eval.coverage.predicted_executions, 10);
        assert!(eval.fatal_rules().is_empty());
    }

    #[test]
    fn close_target_is_late() {
        let cfg = line_chain();
        // Anchor ends block 0, target is block 1's start: 0 instructions
        // ahead of the fall-through, well under the miss latency.
        let anchor = block_end(0x0);
        let (class, eval) = classify_one(&cfg, 0, ins(anchor, 0x1000));
        assert_eq!(class, InsertionClass::Late);
        assert_eq!(eval.diagnostics[0].rule, "D003");
        assert_eq!(eval.coverage.late_executions, 10);
    }

    #[test]
    fn dominated_touch_is_redundant() {
        // 0 → 1 → 2 where block 2 jumps back to a line block 1 sits on:
        // prefetching block 1's line from block 2's end is redundant (block
        // 1 dominates block 2 and is ~16 instructions back).
        let cfg = cfg_of(
            &[0x0, 0x1000, 0x2000],
            &[16, 16, 16],
            &[(0, 1), (1, 2), (2, 1)],
        );
        let anchor = 0x2000 + 4 * 15;
        let (class, eval) = classify_one(&cfg, 0, ins(anchor, 0x1000));
        assert_eq!(class, InsertionClass::Redundant);
        assert_eq!(eval.diagnostics[0].rule, "D002");
        assert!((eval.coverage.redundant_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_loop_set_is_clobbering() {
        // A loop whose body touches `ways` distinct lines that all map to
        // the same set as the (loop-external, far away) target line.
        let config = CoverageConfig {
            l1i_sets: 4,
            l1i_ways: 2,
            miss_latency: 8,
            reuse_window: 0, // disable the redundancy argument
        };
        // Lines are 64 bytes; set = line % 4. Blocks at 0x000 (line 0, set
        // 0), 0x400 (line 16, set 0): both in the loop. Target 0x2000 (line
        // 128, set 0) lives in block 2 outside the loop.
        let cfg = cfg_of(
            &[0x0, 0x400, 0x2000],
            &[16, 16, 16],
            &[(0, 1), (1, 0), (1, 2)],
        );
        let anchor = 0x400 + 4 * 15;
        let plan = plan_of(vec![ins(anchor, 0x2000 + 4 * 8)]);
        let eval = evaluate_plan(&cfg, Some(0), &plan, &config);
        assert_eq!(
            eval.classes[0],
            InsertionClass::Clobbering,
            "{:?}",
            eval.diagnostics
        );
        assert_eq!(eval.diagnostics[0].rule, "D004");
        assert_eq!(eval.coverage.clobbering_sites, 1);
    }

    #[test]
    fn counter_pairs_round_trip() {
        let cfg = line_chain();
        let plan = plan_of(vec![
            ins(block_end(0x0), block_end(0x2000)),
            ins(block_end(0x0), 0x1000),
        ]);
        let eval = evaluate_plan(&cfg, Some(0), &plan, &CoverageConfig::default());
        let pairs = eval.coverage.counter_pairs();
        let back = PredictedCoverage::from_counter_pairs(&pairs);
        assert_eq!(back, eval.coverage);
        assert_eq!(eval.coverage.sites, 2);
    }

    #[test]
    fn empty_plan_has_full_coverage() {
        let cov = PredictedCoverage::default();
        assert!((cov.coverage_ratio() - 1.0).abs() < 1e-9);
        assert!((cov.redundant_rate()).abs() < 1e-9);
    }

    #[test]
    fn no_entry_still_finds_dead_and_late() {
        let cfg = line_chain();
        let plan = plan_of(vec![ins(block_end(0x0), 0x1000), ins(0xdead0, 0x0)]);
        let eval = evaluate_plan(&cfg, None, &plan, &CoverageConfig::default());
        assert_eq!(eval.classes[0], InsertionClass::Late);
        assert_eq!(eval.classes[1], InsertionClass::Dead);
    }
}
