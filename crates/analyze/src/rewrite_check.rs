//! Family R: rewrite diffing — a rewritten trace must be the original plus
//! *exactly* the planned prefetches, in the planned places, with correctly
//! shifted addresses. Nothing reordered, nothing dropped.
//!
//! The checker re-derives the address-shift arithmetic from the plan (the
//! same model [`swip_asmdb::rewrite_trace`] uses: one word per inserted slot,
//! before-anchor slots at the anchor's key, after-anchor slots one word past
//! it) and then walks the two instruction streams in lockstep. It never calls
//! the rewriter itself, so it also catches emission bugs, not just tampering.

use std::collections::BTreeMap;

use swip_asmdb::Plan;
use swip_trace::Trace;
use swip_types::{Addr, InstrKind, Instruction};

use crate::diag::{Diagnostic, Location, Severity};

/// Instruction word size; every inserted prefetch occupies one word.
const WORD: u64 = 4;

/// Diffs `rewritten` against `original` under `plan` (rules R001–R003).
///
/// The walk stops at the first divergence: once alignment between the two
/// streams is lost, every later comparison would misfire.
pub fn diff_rewrite(original: &Trace, plan: &Plan, rewritten: &Trace) -> Vec<Diagnostic> {
    let (per_anchor, shift) = Shift::from_plan(plan);
    let orig = original.instructions();
    let rw = rewritten.instructions();
    let mut diags = Vec::new();
    let mut k = 0usize; // cursor into the rewritten stream

    'walk: for oi in orig {
        let anchor = per_anchor.get(&oi.pc.raw());

        // Planned before-anchor prefetches precede the anchor occurrence.
        if let Some((true, targets)) = anchor {
            if !expect_prefetches(rw, &mut k, oi.pc.raw(), true, targets, &shift, &mut diags) {
                break 'walk;
            }
        }

        // The original instruction itself, address-shifted.
        match rw.get(k) {
            None => {
                diags.push(Diagnostic::new(
                    "R001",
                    Severity::Error,
                    Location::Seq(k as u64),
                    format!(
                        "rewritten trace ends early: instruction originally at {} is missing",
                        oi.pc
                    ),
                ));
                break 'walk;
            }
            Some(r) if r.is_prefetch_i() && !oi.is_prefetch_i() => {
                diags.push(Diagnostic::new(
                    "R002",
                    Severity::Error,
                    Location::Seq(k as u64),
                    format!(
                        "unplanned prefetch.i at {} (no insertion anchors here)",
                        r.pc
                    ),
                ));
                break 'walk;
            }
            Some(r) => {
                let expected = remap_instr(oi, &shift);
                if *r != expected {
                    diags.push(Diagnostic::new(
                        "R001",
                        Severity::Error,
                        Location::Seq(k as u64),
                        format!(
                            "instruction differs from the shifted original: expected {expected}, found {r}"
                        ),
                    ));
                    break 'walk;
                }
                k += 1;
            }
        }

        // Planned after-anchor prefetches follow the anchor occurrence.
        if let Some((false, targets)) = anchor {
            if !expect_prefetches(
                rw,
                &mut k,
                oi.pc.raw() + WORD,
                false,
                targets,
                &shift,
                &mut diags,
            ) {
                break 'walk;
            }
        }
    }

    if diags.is_empty() {
        if let Some(r) = rw.get(k) {
            let (rule, what) = if r.is_prefetch_i() {
                ("R002", "unplanned trailing prefetch.i")
            } else {
                ("R001", "trailing instruction past the original stream")
            };
            diags.push(Diagnostic::new(
                rule,
                Severity::Error,
                Location::Seq(k as u64),
                format!("{what} at {}", r.pc),
            ));
        }
    }
    diags
}

/// Consumes the planned prefetch run for one anchor occurrence. Returns
/// `false` (after pushing a diagnostic) when the walk must stop.
#[allow(clippy::too_many_arguments)]
fn expect_prefetches(
    rw: &[Instruction],
    k: &mut usize,
    key: u64,
    before: bool,
    targets: &[Addr],
    shift: &Shift,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let slot_pcs = shift.slot_addrs(key, targets.len() as u64, before);
    for (slot_pc, target) in slot_pcs.into_iter().zip(targets) {
        let Some(r) = rw.get(*k) else {
            diags.push(Diagnostic::new(
                "R002",
                Severity::Error,
                Location::Seq(*k as u64),
                format!("rewritten trace ends before the planned prefetch of {target}"),
            ));
            return false;
        };
        let InstrKind::PrefetchI { target: got } = r.kind else {
            diags.push(Diagnostic::new(
                "R002",
                Severity::Error,
                Location::Seq(*k as u64),
                format!(
                    "planned prefetch of {target} is missing; found {} at {} instead",
                    r, r.pc
                ),
            ));
            return false;
        };
        if r.pc != slot_pc {
            diags.push(Diagnostic::new(
                "R002",
                Severity::Error,
                Location::Seq(*k as u64),
                format!("prefetch slot at {}, expected slot address {slot_pc}", r.pc),
            ));
            return false;
        }
        let want = shift.remap_target(*target);
        if got != want {
            diags.push(Diagnostic::new(
                "R003",
                Severity::Error,
                Location::Seq(*k as u64),
                format!(
                    "prefetch at {} targets {got}, plan says {target} (shifted: {want})",
                    r.pc
                ),
            ));
            return false;
        }
        *k += 1;
    }
    true
}

/// Per-anchor insertion info: (before-anchor?, deduplicated targets in plan
/// order) — the same grouping the rewriter derives from a plan.
type PerAnchor = BTreeMap<u64, (bool, Vec<Addr>)>;

/// A re-derivation of the rewriter's address-shift model: sorted insertion
/// keys with (after-anchor, before-anchor) slot counts and cumulative totals.
struct Shift {
    keys: Vec<(u64, u64, u64)>,
    cumulative: Vec<u64>,
}

impl Shift {
    fn from_plan(plan: &Plan) -> (PerAnchor, Shift) {
        let mut per_anchor: PerAnchor = BTreeMap::new();
        for ins in &plan.insertions {
            let entry = per_anchor
                .entry(ins.anchor.raw())
                .or_insert_with(|| (ins.before, Vec::new()));
            if !entry.1.contains(&ins.target_pc) {
                entry.1.push(ins.target_pc);
            }
        }
        let mut slots: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for (&anchor, (before, targets)) in &per_anchor {
            let key = if *before { anchor } else { anchor + WORD };
            let entry = slots.entry(key).or_insert((0, 0));
            if *before {
                entry.1 += targets.len() as u64;
            } else {
                entry.0 += targets.len() as u64;
            }
        }
        let keys: Vec<(u64, u64, u64)> = slots.iter().map(|(&kk, &(a, b))| (kk, a, b)).collect();
        let mut cumulative = Vec::with_capacity(keys.len());
        let mut total = 0;
        for &(_, a, b) in &keys {
            total += a + b;
            cumulative.push(total);
        }
        (per_anchor, Shift { keys, cumulative })
    }

    fn find(&self, addr: u64) -> Result<usize, usize> {
        self.keys.binary_search_by_key(&addr, |&(kk, _, _)| kk)
    }

    fn slots_at_or_before(&self, addr: u64) -> u64 {
        match self.find(addr) {
            Ok(i) => self.cumulative[i],
            Err(0) => 0,
            Err(i) => self.cumulative[i - 1],
        }
    }

    fn slots_strictly_before(&self, addr: u64) -> u64 {
        match self.find(addr) {
            Ok(0) | Err(0) => 0,
            Ok(i) | Err(i) => self.cumulative[i - 1],
        }
    }

    fn remap_pc(&self, addr: Addr) -> Addr {
        addr.add(WORD * self.slots_at_or_before(addr.raw()))
    }

    fn remap_target(&self, addr: Addr) -> Addr {
        let after = match self.find(addr.raw()) {
            Ok(i) => self.keys[i].1,
            Err(_) => 0,
        };
        addr.add(WORD * (self.slots_strictly_before(addr.raw()) + after))
    }

    fn slot_addrs(&self, key: u64, m: u64, before: bool) -> Vec<Addr> {
        let base = self.slots_strictly_before(key);
        let after_count = match self.find(key) {
            Ok(i) => self.keys[i].1,
            Err(_) => 0,
        };
        let start = if before { base + after_count } else { base };
        (0..m)
            .map(|j| Addr::new(key + WORD * (start + j)))
            .collect()
    }
}

/// The shifted image of an original instruction: pc and code-space targets
/// move; data addresses do not.
fn remap_instr(instr: &Instruction, shift: &Shift) -> Instruction {
    let mut out = *instr;
    out.pc = shift.remap_pc(instr.pc);
    out.kind = match instr.kind {
        InstrKind::Branch {
            kind,
            target,
            taken,
        } => InstrKind::Branch {
            kind,
            target: shift.remap_target(target),
            taken,
        },
        InstrKind::PrefetchI { target } => InstrKind::PrefetchI {
            target: shift.remap_target(target),
        },
        other => other,
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_asmdb::{rewrite_trace, Insertion};
    use swip_trace::TraceBuilder;

    /// Two blocks looped 3×: A = alu alu jump→0x100, B = alu jump→0x0.
    fn fixture() -> (Trace, Plan) {
        let mut b = TraceBuilder::new("t");
        for _ in 0..3 {
            b.set_pc(Addr::new(0x0));
            b.alu();
            b.alu();
            b.jump(Addr::new(0x100));
            b.alu();
            b.jump(Addr::new(0x0));
        }
        let plan = Plan {
            insertions: vec![Insertion {
                anchor: Addr::new(0x8),
                before: true,
                target_pc: Addr::new(0x100),
                distance: 16,
                reach: 1.0,
            }],
            targeted_lines: 1,
            uncovered_lines: 0,
        };
        (b.finish(), plan)
    }

    fn rules(original: &Trace, plan: &Plan, rewritten: &Trace) -> Vec<&'static str> {
        diff_rewrite(original, plan, rewritten)
            .iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn faithful_rewrite_is_clean() {
        let (t, plan) = fixture();
        let (rw, _) = rewrite_trace(&t, &plan);
        let diags = diff_rewrite(&t, &plan, &rw);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn faithful_after_anchor_rewrite_is_clean() {
        let mut b = TraceBuilder::new("t");
        b.alu();
        b.alu(); // 0x4, after-anchor
        b.alu();
        let t = b.finish();
        let plan = Plan {
            insertions: vec![Insertion {
                anchor: Addr::new(0x4),
                before: false,
                target_pc: Addr::new(0x8),
                distance: 4,
                reach: 1.0,
            }],
            targeted_lines: 1,
            uncovered_lines: 0,
        };
        let (rw, _) = rewrite_trace(&t, &plan);
        let diags = diff_rewrite(&t, &plan, &rw);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn tampered_instruction_is_r001() {
        let (t, plan) = fixture();
        let (rw, _) = rewrite_trace(&t, &plan);
        let mut instrs = rw.instructions().to_vec();
        instrs[0] = Instruction::store(instrs[0].pc, Addr::new(0x9000));
        let bad = Trace::from_instructions(rw.name(), instrs);
        assert_eq!(rules(&t, &plan, &bad), ["R001"]);
    }

    #[test]
    fn truncated_rewrite_is_r001() {
        let (t, plan) = fixture();
        let (rw, _) = rewrite_trace(&t, &plan);
        let mut instrs = rw.instructions().to_vec();
        instrs.pop();
        let bad = Trace::from_instructions(rw.name(), instrs);
        assert_eq!(rules(&t, &plan, &bad), ["R001"]);
    }

    #[test]
    fn dropped_prefetch_is_r002() {
        let (t, plan) = fixture();
        let (rw, _) = rewrite_trace(&t, &plan);
        let instrs: Vec<Instruction> = rw
            .iter()
            .enumerate()
            .filter(|(i, r)| !(*i == 2 && r.is_prefetch_i()))
            .map(|(_, r)| *r)
            .collect();
        assert!(instrs.len() < rw.len(), "expected a prefetch at index 2");
        let bad = Trace::from_instructions(rw.name(), instrs);
        assert_eq!(rules(&t, &plan, &bad), ["R002"]);
    }

    #[test]
    fn extra_prefetch_is_r002() {
        let (t, plan) = fixture();
        let (rw, _) = rewrite_trace(&t, &plan);
        let mut instrs = rw.instructions().to_vec();
        instrs.insert(1, Instruction::prefetch_i(Addr::new(0x4), Addr::new(0x104)));
        let bad = Trace::from_instructions(rw.name(), instrs);
        assert_eq!(rules(&t, &plan, &bad), ["R002"]);
    }

    #[test]
    fn retargeted_prefetch_is_r003() {
        let (t, plan) = fixture();
        let (rw, _) = rewrite_trace(&t, &plan);
        let mut instrs = rw.instructions().to_vec();
        let pf = instrs
            .iter_mut()
            .find(|i| i.is_prefetch_i())
            .expect("rewrite inserted a prefetch");
        pf.kind = InstrKind::PrefetchI {
            target: Addr::new(0x4000),
        };
        let bad = Trace::from_instructions(rw.name(), instrs);
        assert_eq!(rules(&t, &plan, &bad), ["R003"]);
    }
}
