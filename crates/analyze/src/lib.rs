//! `swip-analyze`: static verification and linting for simulator inputs.
//!
//! Simulation results are only as trustworthy as the artifacts fed in:
//! traces, the CFGs reconstructed from them, AsmDB insertion plans, and the
//! rewritten traces those plans produce. This crate re-proves the invariants
//! each downstream consumer assumes, *without running a simulation*, and
//! reports violations as structured diagnostics with stable rule ids.
//!
//! Six analysis families (rule catalog in `DESIGN.md` §8 and §14):
//!
//! * `decode` (`T001`–`T007`) — codec-level failures mapped to diagnostics.
//! * `trace` (`T010`–`T016`) — semantic lints on a decoded trace.
//! * `cfg` (`C001`–`C007`) — well-formedness of the reconstructed CFG.
//! * `plan` (`P001`–`P006`) — insertion-plan claims re-proved on the CFG.
//! * `rewrite` (`R001`–`R003`) — rewritten trace diffed against plan.
//! * `coverage` (`D001`–`D004`) — static prediction of each insertion's
//!   value (dead / redundant / late / clobbering), built on dominator
//!   trees ([`DomTree`]) and natural loops ([`LoopForest`]); opt-in via
//!   [`AnalyzeOptions::coverage`].
//!
//! [`analyze_trace`] chains all post-decode families: it reconstructs the
//! CFG, builds a synthetic insertion plan (profiling the trace's line
//! transitions — no simulation), rewrites, and diffs, so every family runs
//! against every analyzed artifact. Entry point for files/streams is
//! [`analyze_read`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg_check;
mod coverage;
mod diag;
mod dominators;
mod loops;
mod plan_check;
mod predict;
mod rewrite_check;
mod trace_lint;

use std::collections::HashMap;
use std::io::Read;

use swip_asmdb::{plan_insertions, rewrite_trace, select_targets, Cfg};
use swip_trace::{DecodeError, Trace};

pub use cfg_check::check_cfg;
pub use coverage::{
    evaluate_plan, CoverageConfig, InsertionClass, PlanEvaluation, PredictedCoverage,
};
pub use diag::{Diagnostic, Location, Report, Severity};
pub use dominators::DomTree;
pub use loops::{LoopForest, NaturalLoop};
pub use plan_check::verify_plan;
pub use predict::{DivergenceThreshold, PredictError, PredictRow, PredictionDiff};
pub use rewrite_check::diff_rewrite;
pub use trace_lint::lint_trace;

/// Maximum diagnostics kept per rule id; the rest are summarized under a
/// single `A000` note so a corrupt multi-million-instruction trace cannot
/// produce an unbounded report.
pub const MAX_PER_RULE: usize = 100;

/// Maps a codec failure to its diagnostic (rules T001–T007).
pub fn decode_diagnostic(err: &DecodeError) -> Diagnostic {
    let rule = match err {
        DecodeError::BadMagic(_) => "T001",
        DecodeError::UnsupportedVersion(_) => "T002",
        DecodeError::BadTag(_) => "T003",
        DecodeError::BadRegister(_) => "T004",
        DecodeError::Io(_) => "T005",
        DecodeError::BadName => "T006",
        DecodeError::BadLength(_) => "T007",
    };
    Diagnostic::new(
        rule,
        Severity::Error,
        Location::None,
        format!("trace failed to decode: {err}"),
    )
}

/// Options for [`analyze_trace_with`] / [`analyze_read_with`].
#[derive(Copy, Clone, Debug, Default)]
pub struct AnalyzeOptions {
    /// Run the `coverage` family (rules `D001`–`D004`) on the synthetic
    /// plan and attach a [`PredictedCoverage`] summary to the report.
    pub coverage: bool,
    /// Cache/latency model for the coverage family.
    pub coverage_config: CoverageConfig,
}

/// Runs every post-decode analysis family on an in-memory trace.
///
/// The `cfg`, `plan`, and `rewrite` families are skipped when the `trace`
/// family found errors (a discontinuous trace yields a meaningless CFG) or
/// the trace is empty.
pub fn analyze_trace(trace: &Trace) -> Report {
    analyze_trace_with(trace, &AnalyzeOptions::default())
}

/// [`analyze_trace`] with explicit [`AnalyzeOptions`].
pub fn analyze_trace_with(trace: &Trace, options: &AnalyzeOptions) -> Report {
    let mut families = vec!["trace"];
    let mut diags = lint_trace(trace);
    let clean = !diags.iter().any(|d| d.severity == Severity::Error);
    let mut coverage = None;

    if clean && !trace.is_empty() {
        let cfg = Cfg::from_trace(trace);
        families.push("cfg");
        diags.extend(check_cfg(trace, &cfg));

        // Synthetic plan: profile line transitions as a stand-in for an L1-I
        // miss profile, then run the real planner. This keeps the analysis
        // static while exercising the plan and rewrite families on every
        // artifact with the production code paths.
        families.push("plan");
        let misses = line_transition_profile(trace);
        let targets = select_targets(&cfg, &misses, 2, 0.9, 256);
        let plan = plan_insertions(&cfg, &targets, 16, 96, 0.3, 2);
        let entry = trace
            .instructions()
            .first()
            .and_then(|i| cfg.block_of(i.pc));
        diags.extend(verify_plan(&cfg, entry, &plan));

        families.push("rewrite");
        let (rewritten, _) = rewrite_trace(trace, &plan);
        diags.extend(diff_rewrite(trace, &plan, &rewritten));
        // The rewritten trace must still be a structurally sound trace.
        diags.extend(
            lint_trace(&rewritten)
                .into_iter()
                .filter(|d| d.severity == Severity::Error),
        );

        if options.coverage {
            families.push("coverage");
            let eval = evaluate_plan(&cfg, entry, &plan, &options.coverage_config);
            diags.extend(eval.diagnostics);
            coverage = Some(eval.coverage);
        }
    }

    let mut report = Report::new(trace.name(), families, cap_per_rule(diags));
    report.coverage = coverage;
    report
}

/// Decodes a trace from `r` and analyzes it. `subject` (usually the file
/// path) labels the report. Decode failures become a single-diagnostic
/// report from the `decode` family.
pub fn analyze_read<R: Read>(r: R, subject: &str) -> Report {
    analyze_read_with(r, subject, &AnalyzeOptions::default())
}

/// [`analyze_read`] with explicit [`AnalyzeOptions`].
pub fn analyze_read_with<R: Read>(r: R, subject: &str, options: &AnalyzeOptions) -> Report {
    match Trace::read_from(r) {
        Ok(trace) => {
            let mut report = analyze_trace_with(&trace, options);
            report.subject = subject.to_string();
            report.families.insert(0, "decode");
            report
        }
        Err(e) => Report::new(subject, vec!["decode"], vec![decode_diagnostic(&e)]),
    }
}

/// Per-line counts of how often execution *entered* the line (a transition
/// from a different cache line). Lines entered often are exactly the lines
/// an instruction-prefetch plan would target.
fn line_transition_profile(trace: &Trace) -> HashMap<u64, u64> {
    let mut profile: HashMap<u64, u64> = HashMap::new();
    let mut prev_line: Option<u64> = None;
    for i in trace.iter() {
        let line = i.pc.line().number();
        if prev_line != Some(line) {
            *profile.entry(line).or_insert(0) += 1;
        }
        prev_line = Some(line);
    }
    profile
}

/// Keeps at most [`MAX_PER_RULE`] diagnostics per rule, appending one `A000`
/// info note per truncated rule.
fn cap_per_rule(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut kept: Vec<Diagnostic> = Vec::with_capacity(diags.len().min(512));
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for d in diags {
        let n = counts.entry(d.rule).or_insert(0);
        *n += 1;
        if *n <= MAX_PER_RULE {
            kept.push(d);
        }
    }
    let mut truncated: Vec<(&'static str, usize)> = counts
        .into_iter()
        .filter(|&(_, n)| n > MAX_PER_RULE)
        .collect();
    truncated.sort_unstable();
    for (rule, n) in truncated {
        kept.push(Diagnostic::new(
            "A000",
            Severity::Info,
            Location::None,
            format!(
                "{} additional {rule} diagnostics suppressed",
                n - MAX_PER_RULE
            ),
        ));
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_trace::TraceBuilder;
    use swip_types::{Addr, Instruction};

    #[test]
    fn generated_workload_analyzes_clean_of_errors() {
        let spec = swip_workloads::cvp1_suite(3000).remove(1); // a small crypto workload
        let trace = swip_workloads::generate(&spec);
        let report = analyze_trace(&trace);
        assert_eq!(report.errors(), 0, "{report}");
        assert_eq!(report.families, vec!["trace", "cfg", "plan", "rewrite"]);
    }

    #[test]
    fn coverage_family_classifies_every_insertion() {
        let spec = swip_workloads::cvp1_suite(3000).remove(1);
        let trace = swip_workloads::generate(&spec);
        let opts = AnalyzeOptions {
            coverage: true,
            ..Default::default()
        };
        let report = analyze_trace_with(&trace, &opts);
        assert_eq!(report.families.last(), Some(&"coverage"));
        let cov = report.coverage.clone().expect("coverage summary attached");
        assert_eq!(
            cov.sites,
            cov.useful_sites
                + cov.dead_sites
                + cov.redundant_sites
                + cov.late_sites
                + cov.clobbering_sites,
            "every insertion gets exactly one class"
        );
        assert_eq!(
            cov.dead_sites, 0,
            "plans built from an executed trace cannot contain dead insertions"
        );
        assert!(report.to_json().contains("\"coverage\""));
        // Opting out leaves the report exactly as before.
        let plain = analyze_trace(&trace);
        assert!(plain.coverage.is_none());
        assert!(!plain.families.contains(&"coverage"));
    }

    #[test]
    fn broken_trace_skips_downstream_families() {
        let t = Trace::from_instructions(
            "bad",
            vec![
                Instruction::alu(Addr::new(0x0)),
                Instruction::alu(Addr::new(0x900)),
            ],
        );
        let report = analyze_trace(&t);
        assert!(report.has_errors());
        assert_eq!(report.families, vec!["trace"]);
    }

    #[test]
    fn analyze_read_maps_decode_errors() {
        let report = analyze_read(&b"NOPE"[..], "mem");
        assert_eq!(report.families, vec!["decode"]);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, "T001");
        assert!(report.has_errors());
    }

    #[test]
    fn analyze_read_roundtrip_is_clean() {
        let mut b = TraceBuilder::new("rt");
        for _ in 0..8 {
            b.set_pc(Addr::new(0x0));
            b.alu();
            b.cond_branch(Addr::new(0x0), true);
        }
        let mut bytes = Vec::new();
        b.finish().write_to(&mut bytes).unwrap();
        let report = analyze_read(&bytes[..], "rt.swip");
        assert_eq!(report.errors(), 0, "{report}");
        assert_eq!(report.subject, "rt.swip");
        assert_eq!(report.families[0], "decode");
    }

    #[test]
    fn per_rule_cap_truncates_with_note() {
        // 150 zero-size instructions at distinct PCs → 150 T013 candidates.
        let instrs: Vec<Instruction> = (0..150)
            .map(|i| Instruction::alu(Addr::new(i * 4)).with_size(0))
            .collect();
        // Zero size breaks continuity too; count only T013 here.
        let report = analyze_trace(&Trace::from_instructions("cap", instrs));
        let t013 = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "T013")
            .count();
        assert_eq!(t013, MAX_PER_RULE);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "A000" && d.message.contains("T013")));
    }
}
