//! Family P: insertion-plan verification.
//!
//! A [`swip_asmdb::Plan`] makes claims — anchors exist, distances are
//! achievable, reach is a probability — that the rewriter and the simulator
//! then rely on. These rules re-prove each claim against the CFG, including
//! a redundancy argument via dominators: a prefetch whose target line is
//! touched by every path to its anchor warms nothing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use swip_asmdb::{BlockId, Cfg, Plan};

use crate::diag::{Diagnostic, Location, Severity};
use crate::dominators::DomTree;

/// Verifies `plan` against `cfg` (rules P001–P006). `entry` is the CFG's
/// entry block (the block containing the first executed instruction), used
/// for the dominator analysis; passing `None` skips P006.
pub fn verify_plan(cfg: &Cfg, entry: Option<BlockId>, plan: &Plan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dom = entry.map(|e| DomTree::dominators(cfg, e));

    // Forward shortest distances are computed once per distinct target.
    let mut dist_cache: HashMap<u64, Option<Vec<Option<u64>>>> = HashMap::new();

    let mut seen_pairs: HashSet<(u64, u64)> = HashSet::new();

    for (idx, ins) in plan.insertions.iter().enumerate() {
        let loc = Location::Insertion(idx as u64);
        let target_line = ins.target_pc.line().number();

        // P004: (anchor, target line) pairs must be unique.
        if !seen_pairs.insert((ins.anchor.raw(), target_line)) {
            diags.push(Diagnostic::new(
                "P004",
                Severity::Error,
                loc,
                format!(
                    "duplicate insertion: anchor {} already prefetches line {target_line:#x}",
                    ins.anchor
                ),
            ));
        }

        // P005: reach is a probability.
        if !(0.0..=1.0).contains(&ins.reach) || ins.reach.is_nan() {
            diags.push(Diagnostic::new(
                "P005",
                Severity::Error,
                loc,
                format!("reach {} is not a probability in [0, 1]", ins.reach),
            ));
        }

        // P001: the anchor must exist and be an insertion point (the final
        // instruction of its block — prefetches attach to block ends).
        let Some(anchor_block) = cfg.block_of(ins.anchor) else {
            diags.push(Diagnostic::new(
                "P001",
                Severity::Error,
                loc,
                format!("anchor {} was never executed (not in the CFG)", ins.anchor),
            ));
            continue;
        };
        if cfg.block(anchor_block).last_pc() != ins.anchor {
            diags.push(Diagnostic::new(
                "P001",
                Severity::Error,
                loc,
                format!(
                    "anchor {} is not the final instruction of block {anchor_block}",
                    ins.anchor
                ),
            ));
        }

        // P002/P003: the target must be forward-reachable from the anchor,
        // and the recorded distance must be achievable on some path.
        let dists = dist_cache
            .entry(ins.target_pc.raw())
            .or_insert_with(|| target_entry_distances(cfg, ins.target_pc));
        match dists {
            None => {
                diags.push(Diagnostic::new(
                    "P002",
                    Severity::Error,
                    loc,
                    format!(
                        "target {} was never executed (not in the CFG)",
                        ins.target_pc
                    ),
                ));
            }
            Some(dist) => {
                // Achievable distances from this anchor are the entry
                // distances of the anchor block's successors.
                let min_d = cfg
                    .block(anchor_block)
                    .succs
                    .iter()
                    .filter(|&&(s, _)| s < cfg.len())
                    .filter_map(|&(s, _)| dist[s])
                    .min();
                match min_d {
                    None => diags.push(Diagnostic::new(
                        "P002",
                        Severity::Error,
                        loc,
                        format!(
                            "no path from anchor {} to target {} in the CFG",
                            ins.anchor, ins.target_pc
                        ),
                    )),
                    Some(min_d) if ins.distance < min_d => diags.push(Diagnostic::new(
                        "P003",
                        Severity::Warn,
                        loc,
                        format!(
                            "recorded distance {} is below the minimum achievable {min_d}; \
                             the prefetch fires later than planned",
                            ins.distance
                        ),
                    )),
                    Some(_) => {}
                }
            }
        }

        // P006: if a block containing the target line dominates the anchor,
        // the line was already fetched on every path (it may have been
        // evicted since, hence a warning rather than an error).
        if let Some(dom) = &dom {
            let mut cur = Some(anchor_block);
            while let Some(b) = cur {
                let touches = cfg
                    .block(b)
                    .pcs
                    .iter()
                    .any(|pc| pc.line().number() == target_line);
                if touches {
                    diags.push(Diagnostic::new(
                        "P006",
                        Severity::Warn,
                        loc,
                        format!(
                            "redundant prefetch: block {b} already touches line \
                             {target_line:#x} on every path to anchor {}",
                            ins.anchor
                        ),
                    ));
                    break;
                }
                cur = dom.idom(b);
            }
        }
    }
    diags
}

/// Shortest forward distance (in instructions) from each block's *entry* to
/// `target_pc`, or `None` if the target is not in the CFG. Distances are
/// `None` for blocks with no path to the target.
///
/// Mirrors the planner's metric: entering block `B` at distance `d` means
/// execution reaches the target `d` instructions later; predecessors sit a
/// full block-length further out. Shared with the coverage evaluator
/// (family D), which uses the same notion of static distance.
pub(crate) fn target_entry_distances(
    cfg: &Cfg,
    target_pc: swip_types::Addr,
) -> Option<Vec<Option<u64>>> {
    let target_block = cfg.block_of(target_pc)?;
    let offset = cfg
        .block(target_block)
        .pcs
        .iter()
        .position(|&pc| pc == target_pc)? as u64;

    let mut dist: Vec<Option<u64>> = vec![None; cfg.len()];
    let mut heap: BinaryHeap<Reverse<(u64, BlockId)>> = BinaryHeap::new();
    dist[target_block] = Some(offset);
    heap.push(Reverse((offset, target_block)));
    while let Some(Reverse((d, b))) = heap.pop() {
        if dist[b] != Some(d) {
            continue;
        }
        for &(pred, _) in &cfg.block(b).preds {
            if pred >= cfg.len() {
                continue;
            }
            let nd = d + cfg.block(pred).len() as u64;
            if dist[pred].is_none_or(|old| nd < old) {
                dist[pred] = Some(nd);
                heap.push(Reverse((nd, pred)));
            }
        }
    }
    Some(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_asmdb::Insertion;
    use swip_trace::TraceBuilder;
    use swip_types::Addr;

    /// A(0x0, 8 instrs) → B(0x100, 8) → C(0x200, 8) → back to A, looped.
    fn chain() -> (swip_trace::Trace, Cfg) {
        let mut b = TraceBuilder::new("chain");
        for _ in 0..4 {
            b.set_pc(Addr::new(0x0));
            for _ in 0..7 {
                b.alu();
            }
            b.jump(Addr::new(0x100));
            for _ in 0..7 {
                b.alu();
            }
            b.jump(Addr::new(0x200));
            for _ in 0..7 {
                b.alu();
            }
            b.jump(Addr::new(0x0));
        }
        let t = b.finish();
        let cfg = Cfg::from_trace(&t);
        (t, cfg)
    }

    fn entry(cfg: &Cfg) -> Option<BlockId> {
        cfg.block_of(Addr::new(0x0))
    }

    fn ins(anchor: u64, target: u64, distance: u64, reach: f64) -> Insertion {
        Insertion {
            anchor: Addr::new(anchor),
            before: true,
            target_pc: Addr::new(target),
            distance,
            reach,
        }
    }

    fn plan_of(insertions: Vec<Insertion>) -> Plan {
        Plan {
            targeted_lines: insertions.len(),
            insertions,
            uncovered_lines: 0,
        }
    }

    fn rules(cfg: &Cfg, plan: &Plan) -> Vec<&'static str> {
        verify_plan(cfg, entry(cfg), plan)
            .iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn honest_insertion_is_clean() {
        let (_, cfg) = chain();
        // Anchor = A's jump (0x1c), target = C (0x200): 8 instructions away
        // (all of B), minimum achievable 8.
        let plan = plan_of(vec![ins(0x1c, 0x200, 8, 0.9)]);
        let diags = verify_plan(&cfg, entry(&cfg), &plan);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_anchor_is_p001() {
        let (_, cfg) = chain();
        assert_eq!(
            rules(&cfg, &plan_of(vec![ins(0x9999, 0x200, 8, 0.9)])),
            ["P001"]
        );
    }

    #[test]
    fn mid_block_anchor_is_p001() {
        let (_, cfg) = chain();
        // 0x4 exists but is not the final instruction of its block.
        let r = rules(&cfg, &plan_of(vec![ins(0x4, 0x200, 8, 0.9)]));
        assert!(r.contains(&"P001"), "{r:?}");
    }

    #[test]
    fn unreachable_target_is_p002() {
        let (t, cfg) = chain();
        // Orphan C: cut every edge into it so no forward path exists.
        let mut blocks: Vec<_> = cfg.blocks().map(|(_, b)| b.clone()).collect();
        let c = cfg.block_of(Addr::new(0x200)).unwrap();
        for b in &mut blocks {
            b.succs.retain(|&(s, _)| s != c);
        }
        blocks[c].preds.clear();
        let cut = Cfg::from_parts(blocks);
        let _ = t;
        let r = rules(&cut, &plan_of(vec![ins(0x1c, 0x200, 8, 0.9)]));
        assert!(r.contains(&"P002"), "{r:?}");
    }

    #[test]
    fn never_executed_target_is_p002() {
        let (_, cfg) = chain();
        let r = rules(&cfg, &plan_of(vec![ins(0x1c, 0x4000, 8, 0.9)]));
        assert!(r.contains(&"P002"), "{r:?}");
    }

    #[test]
    fn impossible_distance_is_p003() {
        let (_, cfg) = chain();
        // Claimed distance 3, but the target is at least 8 instructions out.
        let r = rules(&cfg, &plan_of(vec![ins(0x1c, 0x200, 3, 0.9)]));
        assert_eq!(r, ["P003"]);
    }

    #[test]
    fn duplicate_pair_is_p004() {
        let (_, cfg) = chain();
        let r = rules(
            &cfg,
            &plan_of(vec![ins(0x1c, 0x200, 8, 0.9), ins(0x1c, 0x200, 40, 0.5)]),
        );
        assert!(r.contains(&"P004"), "{r:?}");
    }

    #[test]
    fn reach_out_of_range_is_p005() {
        let (_, cfg) = chain();
        let r = rules(&cfg, &plan_of(vec![ins(0x1c, 0x200, 8, 1.5)]));
        assert_eq!(r, ["P005"]);
        let r = rules(&cfg, &plan_of(vec![ins(0x1c, 0x200, 8, f64::NAN)]));
        assert_eq!(r, ["P005"]);
    }

    #[test]
    fn dominated_target_line_is_p006() {
        let (_, cfg) = chain();
        // B (0x100) dominates C's jump anchor (0x21c); prefetching B's line
        // from C is redundant — every path to C already fetched B.
        let r = rules(&cfg, &plan_of(vec![ins(0x21c, 0x100, 8, 0.9)]));
        assert!(r.contains(&"P006"), "{r:?}");
    }
}
