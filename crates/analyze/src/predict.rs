//! Predicted coverage diffed against measured [`RunReport`] counters.
//!
//! `swip bench` embeds each workload's [`PredictedCoverage`] (computed
//! statically from the AsmDB plan) in the run report it writes. This module
//! closes the loop: for every workload that both carries a coverage block
//! and simulated an AsmDB configuration, it compares
//!
//! * **predicted executions** (Σ anchor exec counts) against the measured
//!   `ftq.swpf_executed` counter — these should agree almost exactly, since
//!   the rewriter plants one `prefetch.i` per anchor execution; and
//! * the **predicted duplicate rate** (`duplicate_executions /
//!   predicted_executions`, the steady-state residency model behind
//!   `PredictedCoverage::duplicate_rate`) against the **measured duplicate
//!   rate** (`l1i.prefetch_hits / ftq.swpf_executed`) — a prefetch that
//!   hits in the L1-I is exactly one whose line was already resident.
//!
//! Both divergences are unitless fractions compared against one typed
//! [`DivergenceThreshold`]; semantics and the default tolerance are
//! documented in DESIGN.md §14. Measured counters come from the first
//! rewritten-trace AsmDB configuration in the report (`*_asmdb`, never the
//! `*_noov` hint variants, which execute no prefetch instructions).

use std::fmt;

use swip_report::RunReport;

use crate::coverage::PredictedCoverage;

/// Maximum tolerated divergence between a static prediction and the
/// measured counters, as a fraction in `[0, 1]`.
///
/// The default (0.35) is calibrated on the smoke sweep (20 k instructions,
/// stride 16) and documented in DESIGN.md §14; `swip analyze --predict-vs
/// --threshold` overrides it.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct DivergenceThreshold(pub f64);

impl Default for DivergenceThreshold {
    fn default() -> Self {
        DivergenceThreshold(0.35)
    }
}

impl DivergenceThreshold {
    /// Parses a threshold from CLI text; must be a finite fraction in
    /// `[0, 1]`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() && (0.0..=1.0).contains(&v) => Ok(DivergenceThreshold(v)),
            _ => Err(format!(
                "threshold must be a fraction in [0, 1], got {text:?}"
            )),
        }
    }
}

impl fmt::Display for DivergenceThreshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

/// One workload's prediction-vs-measurement comparison.
#[derive(Clone, Debug)]
pub struct PredictRow {
    /// Workload name.
    pub workload: String,
    /// The AsmDB configuration whose counters were compared.
    pub config: String,
    /// Statically predicted dynamic prefetch executions.
    pub predicted_executions: u64,
    /// Measured `ftq.swpf_executed`.
    pub measured_executions: u64,
    /// Predicted fraction of executions finding the line resident
    /// (`PredictedCoverage::duplicate_rate`).
    pub predicted_duplicate_rate: f64,
    /// Measured `l1i.prefetch_hits / ftq.swpf_executed`.
    pub measured_duplicate_rate: f64,
}

impl PredictRow {
    /// Relative error of the execution-count prediction.
    pub fn execution_divergence(&self) -> f64 {
        let denom = self.measured_executions.max(1) as f64;
        (self.predicted_executions as f64 - self.measured_executions as f64).abs() / denom
    }

    /// Absolute difference of the two duplicate-rate fractions.
    pub fn redundancy_divergence(&self) -> f64 {
        (self.predicted_duplicate_rate - self.measured_duplicate_rate).abs()
    }

    /// The larger of the two divergences — the number gated against the
    /// threshold.
    pub fn divergence(&self) -> f64 {
        self.execution_divergence()
            .max(self.redundancy_divergence())
    }
}

/// The full prediction diff over a run report.
#[derive(Clone, Debug)]
pub struct PredictionDiff {
    /// One row per comparable workload.
    pub rows: Vec<PredictRow>,
    /// Workloads skipped, with the reason (no coverage block, no AsmDB
    /// configuration, or no executed prefetches to compare against).
    pub skipped: Vec<(String, String)>,
    /// The threshold the diff was evaluated against.
    pub threshold: DivergenceThreshold,
}

/// A failure producing a [`PredictionDiff`].
#[derive(Clone, PartialEq, Debug)]
pub enum PredictError {
    /// The report contained no workload that could be compared.
    NothingToCompare,
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::NothingToCompare => f.write_str(
                "report has no workload with both a coverage block and a measured \
                 AsmDB configuration (run `swip bench` with an asmdb config first)",
            ),
        }
    }
}

impl std::error::Error for PredictError {}

impl PredictionDiff {
    /// Compares every comparable workload of `report` against its embedded
    /// coverage prediction.
    ///
    /// # Errors
    ///
    /// [`PredictError::NothingToCompare`] when no workload carries both a
    /// coverage block and counters from a rewritten-trace AsmDB
    /// configuration.
    pub fn against(
        report: &RunReport,
        threshold: DivergenceThreshold,
    ) -> Result<Self, PredictError> {
        let mut rows = Vec::new();
        let mut skipped = Vec::new();
        for w in &report.workloads {
            if w.coverage.is_empty() {
                skipped.push((w.name.clone(), "no coverage block".to_string()));
                continue;
            }
            // Rewritten-trace AsmDB configs only: the `_noov` variants model
            // zero-overhead hints and execute no prefetch instructions.
            let Some(c) = w.configs.iter().find(|c| c.config.ends_with("_asmdb")) else {
                skipped.push((
                    w.name.clone(),
                    "no rewritten-trace asmdb config".to_string(),
                ));
                continue;
            };
            let (Some(swpf), Some(pf_hits)) = (
                c.counter("ftq.swpf_executed"),
                c.counter("l1i.prefetch_hits"),
            ) else {
                skipped.push((w.name.clone(), "missing prefetch counters".to_string()));
                continue;
            };
            let cov = PredictedCoverage::from_counter_pairs(&w.coverage);
            let measured_duplicate_rate = if swpf == 0 {
                0.0
            } else {
                pf_hits as f64 / swpf as f64
            };
            rows.push(PredictRow {
                workload: w.name.clone(),
                config: c.config.clone(),
                predicted_executions: cov.predicted_executions,
                measured_executions: swpf,
                predicted_duplicate_rate: cov.duplicate_rate(),
                measured_duplicate_rate,
            });
        }
        if rows.is_empty() {
            return Err(PredictError::NothingToCompare);
        }
        Ok(PredictionDiff {
            rows,
            skipped,
            threshold,
        })
    }

    /// Whether every row diverges at most by the threshold.
    pub fn is_clean(&self) -> bool {
        self.rows.iter().all(|r| r.divergence() <= self.threshold.0)
    }

    /// The largest divergence across all rows.
    pub fn max_divergence(&self) -> f64 {
        self.rows
            .iter()
            .map(PredictRow::divergence)
            .fold(0.0, f64::max)
    }

    /// Rows that exceed the threshold.
    pub fn offenders(&self) -> Vec<&PredictRow> {
        self.rows
            .iter()
            .filter(|r| r.divergence() > self.threshold.0)
            .collect()
    }
}

impl fmt::Display for PredictionDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predicted vs measured prefetch behaviour (threshold {}):",
            self.threshold
        )?;
        for r in &self.rows {
            let verdict = if r.divergence() <= self.threshold.0 {
                "ok"
            } else {
                "DIVERGES"
            };
            writeln!(
                f,
                "  {} [{}]: executions {} predicted / {} measured (Δ {:.2}), \
                 duplicate rate {:.2} predicted / {:.2} measured (Δ {:.2}) — {verdict}",
                r.workload,
                r.config,
                r.predicted_executions,
                r.measured_executions,
                r.execution_divergence(),
                r.predicted_duplicate_rate,
                r.measured_duplicate_rate,
                r.redundancy_divergence(),
            )?;
        }
        for (name, why) in &self.skipped {
            writeln!(f, "  {name}: skipped ({why})")?;
        }
        write!(
            f,
            "{} workload(s) compared, max divergence {:.2} — {}",
            self.rows.len(),
            self.max_divergence(),
            if self.is_clean() { "clean" } else { "diverged" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_report::{ConfigReport, WorkloadReport};

    fn report_with(coverage: Vec<(String, u64)>, config: &str, swpf: u64, hits: u64) -> RunReport {
        let mut r = RunReport::new("all", 20_000, 16, 1);
        r.workloads.push(WorkloadReport {
            name: "w0".into(),
            job_seconds: 0.0,
            coverage,
            configs: vec![ConfigReport {
                config: config.into(),
                prefetcher: String::new(),
                counters: vec![
                    ("ftq.swpf_executed".into(), swpf),
                    ("l1i.prefetch_hits".into(), hits),
                ],
                values: vec![],
            }],
        });
        r.seal();
        r
    }

    fn cov(predicted: u64, duplicates: u64) -> Vec<(String, u64)> {
        vec![
            ("predicted_executions".into(), predicted),
            ("duplicate_executions".into(), duplicates),
        ]
    }

    #[test]
    fn matching_prediction_is_clean() {
        let r = report_with(cov(100, 20), "ftq24_asmdb", 100, 20);
        let diff = PredictionDiff::against(&r, DivergenceThreshold::default()).unwrap();
        assert!(diff.is_clean(), "{diff}");
        assert_eq!(diff.rows.len(), 1);
        assert!(diff.max_divergence() < 1e-9);
        assert!(diff.offenders().is_empty());
    }

    #[test]
    fn large_rate_gap_diverges() {
        // Predicted 0% duplicates, measured 80%.
        let r = report_with(cov(100, 0), "ftq2_asmdb", 100, 80);
        let diff = PredictionDiff::against(&r, DivergenceThreshold::default()).unwrap();
        assert!(!diff.is_clean());
        assert_eq!(diff.offenders().len(), 1);
        assert!(diff.to_string().contains("DIVERGES"));
        // A looser threshold accepts the same rows.
        let diff = PredictionDiff::against(&r, DivergenceThreshold(0.9)).unwrap();
        assert!(diff.is_clean());
    }

    #[test]
    fn noov_configs_are_never_compared() {
        let mut r = report_with(cov(100, 0), "ftq24_asmdb_noov", 0, 0);
        let err = PredictionDiff::against(&r, DivergenceThreshold::default()).unwrap_err();
        assert_eq!(err, PredictError::NothingToCompare);
        // Without a coverage block the workload is skipped too.
        r.workloads[0].coverage.clear();
        let err = PredictionDiff::against(&r, DivergenceThreshold::default()).unwrap_err();
        assert_eq!(err, PredictError::NothingToCompare);
    }

    #[test]
    fn prefetcher_zoo_configs_are_never_compared() {
        // MANA and shadow-BTB runs execute hardware prefetches, not AsmDB
        // insertions — their counters must never be held against the
        // static coverage prediction.
        for label in ["ftq24_mana", "ftq24_shadow_btb"] {
            let r = report_with(cov(100, 0), label, 100, 80);
            let err = PredictionDiff::against(&r, DivergenceThreshold::default()).unwrap_err();
            assert_eq!(err, PredictError::NothingToCompare, "{label}");
        }
    }

    #[test]
    fn threshold_parses_strictly() {
        assert_eq!(
            DivergenceThreshold::parse("0.5"),
            Ok(DivergenceThreshold(0.5))
        );
        assert!(DivergenceThreshold::parse("1.5").is_err());
        assert!(DivergenceThreshold::parse("-0.1").is_err());
        assert!(DivergenceThreshold::parse("NaN").is_err());
        assert!(DivergenceThreshold::parse("x").is_err());
    }
}
