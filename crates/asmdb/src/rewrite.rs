//! Trace rewriting: inserting `prefetch.i` instructions with address
//! shifting (code bloat).

use std::collections::{BTreeMap, HashSet};

use swip_trace::Trace;
use swip_types::{Addr, InstrKind, Instruction};

use crate::Plan;

/// Instruction word size; every inserted prefetch occupies one word.
const WORD: u64 = 4;

/// Bloat accounting for one rewrite (the paper's Figure 7).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct RewriteReport {
    /// Static code-size increase: inserted bytes / original static bytes
    /// (Fig 7a).
    pub static_bloat: f64,
    /// Dynamic instruction increase: executed prefetches / original dynamic
    /// length (Fig 7b).
    pub dynamic_bloat: f64,
    /// Distinct (anchor, target) prefetch slots inserted.
    pub inserted_sites: usize,
    /// Dynamic `prefetch.i` executions in the rewritten trace.
    pub inserted_dynamic: u64,
    /// Original static code bytes (unique PCs × 4).
    pub original_static_bytes: u64,
    /// Original dynamic instruction count.
    pub original_len: u64,
}

/// The address-shift map implied by a set of insertion slots.
///
/// Inserting a prefetch at *key* `k` shifts every address `≥ k` up by one
/// word — exactly what reassembling a binary with an extra instruction does.
/// The paper: "Adding additional instructions shifts the instruction
/// addresses within the binary, shifting the cache lines' contents."
///
/// Slots at a key come in two flavors with different branch-target
/// semantics. *Before-anchor* slots sit at the head of the block whose first
/// remaining instruction is at `k`: a branch targeting `k` enters that block
/// and must execute them, so the target maps to the first slot.
/// *After-anchor* slots were appended to the **preceding** block: a branch
/// targeting `k` must land past them.
#[derive(Clone, Debug, Default)]
pub struct ShiftMap {
    /// Sorted insertion keys with (after-anchor, before-anchor) slot counts.
    keys: Vec<(u64, u64, u64)>,
    /// Cumulative total slot counts (same indexing as `keys`).
    cumulative: Vec<u64>,
}

impl ShiftMap {
    /// The shift map `rewrite_trace` would apply for `plan` — usable to
    /// reason about the rewritten address space (e.g. cache-set geometry)
    /// without materializing the rewritten trace.
    pub fn from_plan(plan: &Plan) -> Self {
        let (_, slots) = plan_slots(plan);
        ShiftMap::new(&slots)
    }

    fn new(slots: &BTreeMap<u64, (u64, u64)>) -> Self {
        let keys: Vec<(u64, u64, u64)> = slots.iter().map(|(&k, &(a, b))| (k, a, b)).collect();
        let mut cumulative = Vec::with_capacity(keys.len());
        let mut total = 0;
        for &(_, a, b) in &keys {
            total += a + b;
            cumulative.push(total);
        }
        ShiftMap { keys, cumulative }
    }

    /// Index of `addr` in the key list, if it is a key.
    fn find(&self, addr: u64) -> Result<usize, usize> {
        self.keys.binary_search_by_key(&addr, |&(k, _, _)| k)
    }

    /// Total slots with key ≤ `addr`.
    fn slots_at_or_before(&self, addr: u64) -> u64 {
        match self.find(addr) {
            Ok(i) => self.cumulative[i],
            Err(0) => 0,
            Err(i) => self.cumulative[i - 1],
        }
    }

    /// Total slots with key < `addr`.
    fn slots_strictly_before(&self, addr: u64) -> u64 {
        match self.find(addr) {
            Ok(0) | Err(0) => 0,
            Ok(i) => self.cumulative[i - 1],
            Err(i) => self.cumulative[i - 1],
        }
    }

    /// The rewritten address of the *instruction* originally at `addr`
    /// (shifts past every slot inserted at or before it).
    pub fn remap_pc(&self, addr: Addr) -> Addr {
        addr.add(WORD * self.slots_at_or_before(addr.raw()))
    }

    /// The rewritten address a *branch target* `addr` resolves to: past any
    /// after-anchor slots at `addr` (they belong to the preceding block) but
    /// at the head of any before-anchor slots (they belong to the targeted
    /// block).
    pub fn remap_target(&self, addr: Addr) -> Addr {
        let after = match self.find(addr.raw()) {
            Ok(i) => self.keys[i].1,
            Err(_) => 0,
        };
        addr.add(WORD * (self.slots_strictly_before(addr.raw()) + after))
    }

    /// Addresses of the `m` before-anchor (`before = true`) or after-anchor
    /// slots at key `k` in the rewritten space.
    fn slot_addrs(&self, key: u64, m: u64, before: bool) -> impl Iterator<Item = Addr> + '_ {
        let base = self.slots_strictly_before(key);
        let after_count = match self.find(key) {
            Ok(i) => self.keys[i].1,
            Err(_) => 0,
        };
        // Layout at a key: after-anchor slots first, then before-anchor.
        let start = if before { base + after_count } else { base };
        (0..m).map(move |j| Addr::new(key + WORD * (start + j)))
    }
}

/// Groups `plan`'s insertions into per-anchor target lists and the slot
/// table keyed by rewritten-space insertion point (before-anchor slots
/// shift the anchor itself; after-anchor slots begin at the next word).
type AnchorSlots = (BTreeMap<u64, (bool, Vec<Addr>)>, BTreeMap<u64, (u64, u64)>);

fn plan_slots(plan: &Plan) -> AnchorSlots {
    // Group insertions per anchor, preserving plan order.
    let mut per_anchor: BTreeMap<u64, (bool, Vec<Addr>)> = BTreeMap::new();
    for ins in &plan.insertions {
        let entry = per_anchor
            .entry(ins.anchor.raw())
            .or_insert_with(|| (ins.before, Vec::new()));
        debug_assert_eq!(
            entry.0, ins.before,
            "an anchor's before/after mode is a property of its instruction"
        );
        if !entry.1.contains(&ins.target_pc) {
            entry.1.push(ins.target_pc);
        }
    }
    let mut slots: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for (&anchor, (before, targets)) in &per_anchor {
        let key = if *before { anchor } else { anchor + WORD };
        let entry = slots.entry(key).or_insert((0, 0));
        if *before {
            entry.1 += targets.len() as u64;
        } else {
            entry.0 += targets.len() as u64;
        }
    }
    (per_anchor, slots)
}

/// Applies `plan` to `trace`, producing the rewritten trace and its bloat
/// report.
///
/// Every static address at or past an insertion point shifts by one word per
/// inserted prefetch; branch targets (taken and fall-through) are remapped
/// into the new address space; data addresses are untouched. The dynamic
/// stream is identical to the input modulo the inserted `prefetch.i`
/// instructions, which execute every time their anchor does.
pub fn rewrite_trace(trace: &Trace, plan: &Plan) -> (Trace, RewriteReport) {
    let (per_anchor, slots) = plan_slots(plan);
    let shift = ShiftMap::new(&slots);

    let mut out = Vec::with_capacity(trace.len() + trace.len() / 8);
    let mut inserted_dynamic = 0u64;
    let mut unique_pcs: HashSet<u64> = HashSet::with_capacity(trace.len() / 4);

    let emit_prefetches = |key: u64,
                           before: bool,
                           targets: &[Addr],
                           out: &mut Vec<Instruction>,
                           inserted: &mut u64| {
        let addrs = shift.slot_addrs(key, targets.len() as u64, before);
        for (slot_pc, target) in addrs.zip(targets) {
            out.push(Instruction::prefetch_i(
                slot_pc,
                shift.remap_target(*target),
            ));
            *inserted += 1;
        }
    };

    for instr in trace.iter() {
        unique_pcs.insert(instr.pc.raw());
        let anchor_info = per_anchor.get(&instr.pc.raw());
        if let Some((true, targets)) = anchor_info {
            emit_prefetches(
                instr.pc.raw(),
                true,
                targets,
                &mut out,
                &mut inserted_dynamic,
            );
        }
        out.push(remap_instr(instr, &shift));
        if let Some((false, targets)) = anchor_info {
            emit_prefetches(
                instr.pc.raw() + WORD,
                false,
                targets,
                &mut out,
                &mut inserted_dynamic,
            );
        }
    }

    let original_static_bytes = unique_pcs.len() as u64 * WORD;
    let total_slots: u64 = slots.values().map(|&(a, b)| a + b).sum();
    let inserted_static_bytes: u64 = WORD * total_slots;
    let report = RewriteReport {
        static_bloat: if original_static_bytes == 0 {
            0.0
        } else {
            inserted_static_bytes as f64 / original_static_bytes as f64
        },
        dynamic_bloat: if trace.is_empty() {
            0.0
        } else {
            inserted_dynamic as f64 / trace.len() as f64
        },
        inserted_sites: total_slots as usize,
        inserted_dynamic,
        original_static_bytes,
        original_len: trace.len() as u64,
    };
    (
        Trace::from_instructions(format!("{}+asmdb", trace.name()), out),
        report,
    )
}

fn remap_instr(instr: &Instruction, shift: &ShiftMap) -> Instruction {
    let mut out = *instr;
    out.pc = shift.remap_pc(instr.pc);
    out.kind = match instr.kind {
        InstrKind::Branch {
            kind,
            target,
            taken,
        } => InstrKind::Branch {
            kind,
            target: shift.remap_target(target),
            taken,
        },
        InstrKind::PrefetchI { target } => InstrKind::PrefetchI {
            target: shift.remap_target(target),
        },
        other => other, // data addresses are not code; never shifted
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Insertion;
    use swip_trace::TraceBuilder;

    fn plan_with(insertions: Vec<Insertion>) -> Plan {
        Plan {
            targeted_lines: insertions.len(),
            insertions,
            uncovered_lines: 0,
        }
    }

    fn continuity_holds(trace: &Trace) {
        for w in trace.instructions().windows(2) {
            assert_eq!(
                w[0].next_pc(),
                w[1].pc,
                "discontinuity between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn empty_plan_is_identity_modulo_name() {
        let mut b = TraceBuilder::new("t");
        b.alu().alu().cond_branch(Addr::new(0), true);
        let trace = b.finish();
        let (rewritten, report) = rewrite_trace(&trace, &Plan::default());
        assert_eq!(rewritten.instructions(), trace.instructions());
        assert_eq!(report.static_bloat, 0.0);
        assert_eq!(report.dynamic_bloat, 0.0);
    }

    #[test]
    fn before_branch_insertion_shifts_and_stays_continuous() {
        // Block A: alu alu jump->0x100 ; Block B at 0x100: alu, executed 3x.
        let mut b = TraceBuilder::new("t");
        for _ in 0..3 {
            b.set_pc(Addr::new(0x0));
            b.alu();
            b.alu();
            b.jump(Addr::new(0x100));
            b.alu();
            b.jump(Addr::new(0x0));
        }
        let trace = b.finish();
        let plan = plan_with(vec![Insertion {
            anchor: Addr::new(0x8), // the jump in block A
            before: true,
            target_pc: Addr::new(0x100),
            distance: 16,
            reach: 1.0,
        }]);
        let (rw, report) = rewrite_trace(&trace, &plan);
        continuity_holds(&rw);
        // Per dynamic iteration: alu(0x0) alu(0x4) PF(0x8) jump(0xc) ...
        let instrs = rw.instructions();
        assert_eq!(
            instrs[2].kind,
            InstrKind::PrefetchI {
                target: Addr::new(0x104)
            }
        );
        assert_eq!(instrs[2].pc, Addr::new(0x8));
        assert_eq!(instrs[3].pc, Addr::new(0xc)); // the shifted jump
        assert_eq!(instrs[3].branch_target(), Some(Addr::new(0x104)));
        assert_eq!(instrs[4].pc, Addr::new(0x104)); // shifted block B
        assert_eq!(report.inserted_dynamic, 3);
        assert_eq!(report.inserted_sites, 1);
        assert!(report.dynamic_bloat > 0.0 && report.static_bloat > 0.0);
    }

    #[test]
    fn addresses_before_insertion_point_do_not_move() {
        let mut b = TraceBuilder::new("t");
        b.set_pc(Addr::new(0x0));
        b.alu();
        b.alu();
        b.jump(Addr::new(0x100));
        b.alu();
        let trace = b.finish();
        let plan = plan_with(vec![Insertion {
            anchor: Addr::new(0x8),
            before: true,
            target_pc: Addr::new(0x100),
            distance: 4,
            reach: 1.0,
        }]);
        let (rw, _) = rewrite_trace(&trace, &plan);
        assert_eq!(rw.instructions()[0].pc, Addr::new(0x0));
        assert_eq!(rw.instructions()[1].pc, Addr::new(0x4));
    }

    #[test]
    fn after_anchor_insertion_for_fallthrough_blocks() {
        // A fall-through anchor: alu at 0x4 (block boundary after it via
        // branch-target leader at 0x8 does not exist here, so we fabricate
        // the plan directly).
        let mut b = TraceBuilder::new("t");
        b.alu(); // 0x0
        b.alu(); // 0x4  <- anchor, after
        b.alu(); // 0x8
        let trace = b.finish();
        let plan = plan_with(vec![Insertion {
            anchor: Addr::new(0x4),
            before: false,
            target_pc: Addr::new(0x8),
            distance: 4,
            reach: 1.0,
        }]);
        let (rw, _) = rewrite_trace(&trace, &plan);
        continuity_holds(&rw);
        let instrs = rw.instructions();
        assert_eq!(instrs[1].pc, Addr::new(0x4));
        assert!(matches!(instrs[2].kind, InstrKind::PrefetchI { .. }));
        assert_eq!(instrs[2].pc, Addr::new(0x8));
        assert_eq!(instrs[3].pc, Addr::new(0xc)); // shifted third alu
    }

    #[test]
    fn multiple_targets_at_one_anchor() {
        let mut b = TraceBuilder::new("t");
        b.alu();
        b.alu();
        b.jump(Addr::new(0x100));
        b.alu();
        let trace = b.finish();
        let plan = plan_with(vec![
            Insertion {
                anchor: Addr::new(0x8),
                before: true,
                target_pc: Addr::new(0x100),
                distance: 4,
                reach: 1.0,
            },
            Insertion {
                anchor: Addr::new(0x8),
                before: true,
                target_pc: Addr::new(0x140),
                distance: 4,
                reach: 1.0,
            },
        ]);
        let (rw, report) = rewrite_trace(&trace, &plan);
        continuity_holds(&rw);
        assert_eq!(report.inserted_sites, 2);
        let pf: Vec<_> = rw
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::PrefetchI { .. }))
            .collect();
        assert_eq!(pf.len(), 2);
    }

    #[test]
    fn removing_prefetches_recovers_original_order() {
        let mut b = TraceBuilder::new("t");
        for _ in 0..4 {
            b.set_pc(Addr::new(0x0));
            b.alu();
            b.cond_branch(Addr::new(0x40), true);
            b.alu();
            b.jump(Addr::new(0x0));
        }
        let trace = b.finish();
        let plan = plan_with(vec![Insertion {
            anchor: Addr::new(0x4),
            before: true,
            target_pc: Addr::new(0x40),
            distance: 4,
            reach: 1.0,
        }]);
        let (rw, _) = rewrite_trace(&trace, &plan);
        let stripped: Vec<InstrKind> = rw
            .iter()
            .filter(|i| !i.is_prefetch_i())
            .map(|i| match i.kind {
                InstrKind::Branch { kind, taken, .. } => InstrKind::Branch {
                    kind,
                    taken,
                    target: Addr::ZERO,
                },
                k => k,
            })
            .collect();
        let original: Vec<InstrKind> = trace
            .iter()
            .map(|i| match i.kind {
                InstrKind::Branch { kind, taken, .. } => InstrKind::Branch {
                    kind,
                    taken,
                    target: Addr::ZERO,
                },
                k => k,
            })
            .collect();
        assert_eq!(stripped, original);
    }
}
