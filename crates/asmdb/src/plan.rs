//! The insertion plan: where prefetches go and what they target.

use std::collections::HashMap;

use swip_core::{PrefetchHints, PreloadMetadata};
use swip_types::Addr;

/// One planned software-prefetch insertion.
#[derive(Clone, PartialEq, Debug)]
pub struct Insertion {
    /// Static PC of the *anchor* instruction: the last instruction of the
    /// insertion block. The prefetch is placed immediately before the anchor
    /// when the anchor is a branch (so control flow still leaves the block
    /// last), immediately after it otherwise.
    pub anchor: Addr,
    /// True when the prefetch goes before the anchor.
    pub before: bool,
    /// First executed instruction of the missing code line (original
    /// address space); the prefetch targets the line containing it.
    pub target_pc: Addr,
    /// Estimated distance (instructions) from the insertion to the target.
    pub distance: u64,
    /// Estimated probability that execution reaches the target within the
    /// window (AsmDB's fanout criterion).
    pub reach: f64,
}

/// The complete insertion plan for one trace.
#[derive(Clone, Default, Debug)]
pub struct Plan {
    /// All insertions, deduplicated on (anchor, target).
    pub insertions: Vec<Insertion>,
    /// Number of distinct miss lines targeted.
    pub targeted_lines: usize,
    /// Number of profiled miss lines that had no eligible insertion site
    /// (too close to every entry path, or fanout below threshold).
    pub uncovered_lines: usize,
}

impl Plan {
    /// True when no insertions were planned.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty()
    }

    /// Number of planned insertions.
    pub fn len(&self) -> usize {
        self.insertions.len()
    }

    /// Converts the plan into no-overhead hints on the *original* trace:
    /// trigger PC → target addresses. Used for the paper's
    /// "No Insertion Overhead" configurations.
    pub fn to_hints(&self) -> PrefetchHints {
        let mut hints: HashMap<Addr, Vec<Addr>> = HashMap::new();
        for ins in &self.insertions {
            hints.entry(ins.anchor).or_default().push(ins.target_pc);
        }
        hints
    }

    /// Converts the plan into §VI preload metadata on the *original* trace:
    /// the trigger is the cache line of each insertion anchor, so the
    /// prefetch fires when the front-end requests that line from the L1-I.
    pub fn to_preload_metadata(&self) -> PreloadMetadata {
        let mut meta: PreloadMetadata = HashMap::new();
        for ins in &self.insertions {
            let targets = meta.entry(ins.anchor.line().number()).or_default();
            if !targets.contains(&ins.target_pc) {
                targets.push(ins.target_pc);
            }
        }
        meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insertion(anchor: u64, target: u64) -> Insertion {
        Insertion {
            anchor: Addr::new(anchor),
            before: true,
            target_pc: Addr::new(target),
            distance: 64,
            reach: 0.9,
        }
    }

    #[test]
    fn hints_group_by_anchor() {
        let plan = Plan {
            insertions: vec![
                insertion(0x10, 0x1000),
                insertion(0x10, 0x2000),
                insertion(0x20, 0x3000),
            ],
            targeted_lines: 3,
            uncovered_lines: 0,
        };
        let hints = plan.to_hints();
        assert_eq!(hints.len(), 2);
        assert_eq!(hints[&Addr::new(0x10)].len(), 2);
        assert_eq!(hints[&Addr::new(0x20)], vec![Addr::new(0x3000)]);
    }

    #[test]
    fn empty_plan() {
        let plan = Plan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.to_hints().is_empty());
    }
}
