//! The end-to-end AsmDB pipeline: profile → analyze → rewrite.

use std::sync::Arc;

use swip_core::{HintTable, PrefetchHints, SimConfig, SimReport, Simulator};
use swip_trace::Trace;

use crate::rewrite::{rewrite_trace, RewriteReport};
use crate::select::{plan_insertions, select_targets};
use crate::{Cfg, Plan};

/// AsmDB tuning knobs.
///
/// The defaults follow the paper's description: high-impact misses are
/// selected by rank until 90% of misses are covered, prefetches land between
/// the minimum distance (IPC × LLC latency) and a window of 4× that, and an
/// insertion site must reach the target with probability ≥ 0.35 (the
/// complement of the fanout criterion — the paper tunes this aggressiveness
/// knob, trading accuracy for coverage).
#[derive(Clone, Debug)]
pub struct AsmdbConfig {
    /// Minimum profiled misses for a line to be considered.
    pub min_misses: u64,
    /// Fraction of total misses the target list should cover.
    pub miss_coverage: f64,
    /// Hard cap on the number of target lines.
    pub max_targets: usize,
    /// Minimum reach probability for an insertion site (inverse-fanout).
    pub min_reach: f64,
    /// Maximum insertion sites per target.
    pub max_sites_per_target: usize,
    /// Window = `window_factor` × minimum distance.
    pub window_factor: u64,
    /// Lower bound on the minimum distance (instructions), guarding against
    /// degenerate IPC measurements.
    pub min_distance_floor: u64,
}

impl Default for AsmdbConfig {
    fn default() -> Self {
        AsmdbConfig {
            min_misses: 3,
            miss_coverage: 0.92,
            max_targets: 8192,
            min_reach: 0.30,
            max_sites_per_target: 2,
            window_factor: 6,
            min_distance_floor: 8,
        }
    }
}

impl AsmdbConfig {
    /// A more aggressive configuration: lower reach threshold and more
    /// sites per target (higher coverage, more bloat — the trade the paper
    /// discusses in §V.A).
    pub fn aggressive() -> Self {
        AsmdbConfig {
            min_reach: 0.15,
            max_sites_per_target: 3,
            miss_coverage: 0.97,
            ..Self::default()
        }
    }
}

/// Everything the pipeline produces for one workload.
#[derive(Clone, Debug)]
pub struct AsmdbOutput {
    /// The profiling run's report (includes the line-miss profile).
    pub profile: SimReport,
    /// The insertion plan.
    pub plan: Plan,
    /// The rewritten trace with `prefetch.i` instructions and shifted
    /// addresses.
    pub rewritten: Trace,
    /// Bloat accounting (Fig 7).
    pub report: RewriteReport,
    /// No-overhead hints equivalent to the plan, for the idealized
    /// configurations (applied to the *original* trace).
    pub hints: PrefetchHints,
    /// The same hints as a prebuilt shared table: built once here so every
    /// no-overhead simulation of this workload shares one copy by `Arc`
    /// instead of cloning the map per run.
    pub hint_table: Arc<HintTable>,
    /// The minimum distance used (IPC × LLC latency, floored).
    pub min_distance: u64,
}

/// The AsmDB software instruction prefetcher.
///
/// See the crate-level docs for the pipeline description and an example.
#[derive(Clone, Debug)]
pub struct Asmdb {
    config: AsmdbConfig,
}

impl Asmdb {
    /// Creates a pipeline with the given tuning.
    pub fn new(config: AsmdbConfig) -> Self {
        Asmdb { config }
    }

    /// The pipeline's tuning knobs.
    pub fn config(&self) -> &AsmdbConfig {
        &self.config
    }

    /// Runs the profiling stage: one simulation of `trace` under
    /// `sim_config` with line-miss profiling enabled.
    pub fn profile(&self, trace: &Trace, sim_config: &SimConfig) -> SimReport {
        let mut cfg = sim_config.clone();
        cfg.collect_line_profile = true;
        Simulator::new(cfg).run(trace)
    }

    /// Runs the analysis stage against an existing profile, producing the
    /// insertion plan.
    pub fn plan(&self, trace: &Trace, profile: &SimReport, sim_config: &SimConfig) -> (Plan, u64) {
        let cfg = Cfg::from_trace(trace);
        let targets = select_targets(
            &cfg,
            &profile.line_misses,
            self.config.min_misses,
            self.config.miss_coverage,
            self.config.max_targets,
        );
        // "AsmDB approximates distance by multiplying an application's IPC
        // by the LLC's access latency."
        let min_distance = ((profile.effective_ipc * sim_config.memory.llc_round_trip() as f64)
            .ceil() as u64)
            .max(self.config.min_distance_floor);
        let window = min_distance * self.config.window_factor;
        let plan = plan_insertions(
            &cfg,
            &targets,
            min_distance,
            window,
            self.config.min_reach,
            self.config.max_sites_per_target,
        );
        (plan, min_distance)
    }

    /// Runs the whole pipeline: profile, analyze, rewrite, and derive
    /// no-overhead hints.
    pub fn run(&self, trace: &Trace, sim_config: &SimConfig) -> AsmdbOutput {
        let profile = self.profile(trace, sim_config);
        let (plan, min_distance) = self.plan(trace, &profile, sim_config);
        let (rewritten, report) = rewrite_trace(trace, &plan);
        let hints = plan.to_hints();
        let hint_table = Arc::new(HintTable::from_pc_map(&hints));
        AsmdbOutput {
            profile,
            plan,
            rewritten,
            report,
            hints,
            hint_table,
            min_distance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_trace::TraceBuilder;
    use swip_types::{Addr, InstrKind};

    /// A call-chain workload: an outer loop walks 32 call sites, each with a
    /// *fixed* cold callee. The chain's code (≈ 200+ lines) thrashes the
    /// tiny 4 KiB L1-I, so every callee line misses each iteration, and
    /// single-predecessor paths give AsmDB reach-1.0 insertion sites.
    fn missy_trace() -> Trace {
        let mut b = TraceBuilder::new("missy");
        let sites = 32u64;
        let caller_base = |k: u64| Addr::new(0x1000 + k * 0x68); // 26-instr span each
        let callee_base = |k: u64| Addr::new(0x100_000 + k * 0x1a8);
        for _ in 0..60 {
            for k in 0..sites {
                b.set_pc(caller_base(k));
                for _ in 0..7 {
                    b.alu();
                }
                b.call(callee_base(k));
                for _ in 0..15 {
                    b.alu();
                }
                b.ret(caller_base(k).add(8 * 4));
                if k + 1 < sites {
                    b.jump(caller_base(k + 1));
                } else {
                    b.jump(caller_base(0));
                }
            }
        }
        b.finish()
    }

    #[test]
    fn pipeline_targets_cold_lines_and_rewrites() {
        let trace = missy_trace();
        let asmdb = Asmdb::new(AsmdbConfig {
            min_misses: 2,
            ..AsmdbConfig::default()
        });
        let out = asmdb.run(&trace, &SimConfig::test_scale());
        assert!(out.profile.completed);
        assert!(
            !out.plan.is_empty(),
            "cold call targets must attract prefetches (profile had {} miss lines)",
            out.profile.line_misses.len()
        );
        assert!(out.report.inserted_dynamic > 0);
        assert!(out.report.static_bloat > 0.0);
        assert!(out.rewritten.len() > trace.len());
        // Hints and rewrites describe the same plan.
        let hint_targets: usize = out.hints.values().map(Vec::len).sum();
        assert_eq!(hint_targets, out.plan.len());
    }

    #[test]
    fn rewritten_trace_simulates_and_prefetches_fire() {
        let trace = missy_trace();
        let asmdb = Asmdb::new(AsmdbConfig {
            min_misses: 2,
            ..AsmdbConfig::default()
        });
        let out = asmdb.run(&trace, &SimConfig::test_scale());
        let r = Simulator::new(SimConfig::test_scale()).run(&out.rewritten);
        assert!(r.completed, "rewritten trace must simulate to completion");
        assert_eq!(r.prefetch_instructions, out.report.inserted_dynamic);
        assert!(r.frontend.swpf_executed.get() > 0);
    }

    #[test]
    fn no_overhead_hints_fire_on_original_trace() {
        let trace = missy_trace();
        let asmdb = Asmdb::new(AsmdbConfig {
            min_misses: 2,
            ..AsmdbConfig::default()
        });
        let out = asmdb.run(&trace, &SimConfig::test_scale());
        let r = Simulator::new(SimConfig::test_scale()).run_with_hints(&trace, &out.hints);
        assert!(r.completed);
        assert_eq!(r.prefetch_instructions, 0, "hints add no instructions");
        assert!(r.frontend.swpf_hinted.get() > 0);
    }

    #[test]
    fn rewritten_trace_keeps_control_flow_continuity() {
        let trace = missy_trace();
        let asmdb = Asmdb::new(AsmdbConfig {
            min_misses: 2,
            ..AsmdbConfig::default()
        });
        let out = asmdb.run(&trace, &SimConfig::test_scale());
        for w in out.rewritten.instructions().windows(2) {
            assert_eq!(w[0].next_pc(), w[1].pc);
        }
    }

    #[test]
    fn min_distance_tracks_ipc() {
        let trace = missy_trace();
        let asmdb = Asmdb::new(AsmdbConfig::default());
        let out = asmdb.run(&trace, &SimConfig::test_scale());
        let cfg = SimConfig::test_scale();
        let expected =
            (out.profile.effective_ipc * cfg.memory.llc_round_trip() as f64).ceil() as u64;
        assert_eq!(out.min_distance, expected.max(8));
    }

    #[test]
    fn quiet_trace_yields_empty_plan() {
        let mut b = TraceBuilder::new("quiet");
        for _ in 0..2000 {
            b.set_pc(Addr::new(0x100));
            b.alu();
            b.cond_branch(Addr::new(0x100), true);
        }
        let trace = b.finish();
        let asmdb = Asmdb::new(AsmdbConfig::default());
        let out = asmdb.run(&trace, &SimConfig::test_scale());
        assert!(
            out.plan.is_empty(),
            "a one-line loop has no misses to cover"
        );
        assert_eq!(out.report.inserted_dynamic, 0);
        assert_eq!(
            out.rewritten.instructions().len(),
            trace.len(),
            "empty plan rewrites to an identical stream"
        );
    }

    #[test]
    fn aggressive_config_inserts_at_least_as_much() {
        let trace = missy_trace();
        let base = Asmdb::new(AsmdbConfig {
            min_misses: 2,
            ..AsmdbConfig::default()
        })
        .run(&trace, &SimConfig::test_scale());
        let aggressive = Asmdb::new(AsmdbConfig {
            min_misses: 2,
            ..AsmdbConfig::aggressive()
        })
        .run(&trace, &SimConfig::test_scale());
        assert!(aggressive.report.inserted_sites >= base.report.inserted_sites);
    }

    #[test]
    fn prefetch_targets_live_in_rewritten_code_space() {
        let trace = missy_trace();
        let asmdb = Asmdb::new(AsmdbConfig {
            min_misses: 2,
            ..AsmdbConfig::default()
        });
        let out = asmdb.run(&trace, &SimConfig::test_scale());
        let code_pcs: std::collections::HashSet<u64> =
            out.rewritten.iter().map(|i| i.pc.line().number()).collect();
        for i in out.rewritten.iter() {
            if let InstrKind::PrefetchI { target } = i.kind {
                assert!(
                    code_pcs.contains(&target.line().number()),
                    "prefetch target {target} not in rewritten code space"
                );
            }
        }
    }
}
