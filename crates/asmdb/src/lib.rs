//! AsmDB-style software instruction prefetching for `swip-fe`.
//!
//! This crate reimplements the pipeline the paper evaluates: the
//! state-of-the-art software instruction prefetcher **AsmDB** (Ayers et al.,
//! ISCA'19), as modeled by Chacon et al. on a trace-based simulator:
//!
//! 1. **Profile** — run the trace once and collect per-line L1-I miss
//!    counts, the achieved IPC, and basic-block behavior
//!    ([`swip_core::SimReport`] with `collect_line_profile`).
//! 2. **CFG reconstruction** ([`Cfg`]) — recover basic blocks and weighted
//!    control-flow edges from the dynamic trace, exactly as the paper does
//!    ("We use these results to recreate the application's CFG").
//! 3. **Target selection** ([`select_targets`]) — rank miss lines by miss
//!    count and keep the high-impact ones.
//! 4. **Insertion-site selection** ([`plan_insertions`]) — walk the CFG
//!    backward from each target; a candidate block is eligible when its
//!    distance (in instructions) lies between the *minimum distance*
//!    (IPC × LLC round-trip latency) and the *window*, and its *fanout*
//!    (probability that execution from the candidate reaches the target
//!    within the window) clears the threshold.
//! 5. **Rewrite** ([`rewrite_trace`]) — produce a new trace with
//!    `prefetch.i` instructions appended to the chosen blocks, shifting all
//!    later static addresses (code bloat) and remapping branch targets; or
//!    produce no-overhead [`swip_core::PrefetchHints`] for the idealized
//!    configurations.
//!
//! [`Asmdb`] packages the whole pipeline.
//!
//! # Examples
//!
//! ```
//! use swip_asmdb::{Asmdb, AsmdbConfig};
//! use swip_core::SimConfig;
//! use swip_trace::TraceBuilder;
//! use swip_types::Addr;
//!
//! // A trivially small trace: the pipeline runs end to end even when there
//! // is nothing worth prefetching.
//! let mut b = TraceBuilder::new("demo");
//! for _ in 0..64 { b.alu(); }
//! let trace = b.finish();
//!
//! let asmdb = Asmdb::new(AsmdbConfig::default());
//! let out = asmdb.run(&trace, &SimConfig::test_scale());
//! assert!(out.report.dynamic_bloat >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod pipeline;
mod plan;
mod rewrite;
mod select;

pub use cfg::{BlockId, Cfg, CfgBlock};
pub use pipeline::{Asmdb, AsmdbConfig, AsmdbOutput};
pub use plan::{Insertion, Plan};
pub use rewrite::{rewrite_trace, RewriteReport, ShiftMap};
pub use select::{plan_insertions, select_targets, MissTarget};
