//! Target selection and insertion-site planning (AsmDB's analysis core).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use swip_types::{Addr, LineAddr, CACHE_LINE_SIZE};

use crate::plan::{Insertion, Plan};
use crate::{BlockId, Cfg};

/// One high-impact miss line chosen for prefetching.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MissTarget {
    /// The missing code line.
    pub line: LineAddr,
    /// Profiled L1-I demand misses attributed to the line.
    pub misses: u64,
    /// First executed instruction address within the line.
    pub first_pc: Addr,
    /// Block containing `first_pc`.
    pub block: BlockId,
}

/// Ranks profiled miss lines and keeps the high-impact ones.
///
/// AsmDB "generates an ordered list of potential prefetch targets by ranking
/// the instructions based on their misses" and selects the highest-ranked.
/// We keep lines with at least `min_misses` misses, in rank order, until
/// `coverage` of all profiled misses is covered or `max_targets` is reached.
pub fn select_targets(
    cfg: &Cfg,
    line_misses: &HashMap<u64, u64>,
    min_misses: u64,
    coverage: f64,
    max_targets: usize,
) -> Vec<MissTarget> {
    let total: u64 = line_misses.values().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut ranked: Vec<(u64, u64)> = line_misses
        .iter()
        .map(|(&line, &misses)| (line, misses))
        .collect();
    ranked.sort_by_key(|&(line, misses)| (Reverse(misses), line));

    let mut targets = Vec::new();
    let mut covered = 0u64;
    for (line_number, misses) in ranked {
        if misses < min_misses || targets.len() >= max_targets {
            break;
        }
        if (covered as f64) / (total as f64) >= coverage {
            break;
        }
        covered += misses;
        let line = LineAddr::from_line_number(line_number);
        // First executed pc within the line (instructions are 4-byte).
        let Some((first_pc, block)) = (0..CACHE_LINE_SIZE / 4)
            .map(|k| line.base().add(k * 4))
            .find_map(|pc| cfg.block_of(pc).map(|b| (pc, b)))
        else {
            continue; // profiled line never executed (should not happen)
        };
        targets.push(MissTarget {
            line,
            misses,
            first_pc,
            block,
        });
    }
    targets
}

/// A candidate insertion block discovered by the backward walk.
#[derive(Copy, Clone, Debug)]
struct Candidate {
    distance: u64,
    reach: f64,
}

/// Plans prefetch insertions for the selected targets.
///
/// For each target, the CFG is walked backward (shortest-distance first).
/// The prefetch is conceptually placed at the *end* of a candidate block, so
/// a candidate's distance to the target is the distance accumulated at its
/// successor on the discovered path. Following AsmDB:
///
/// * the candidate must be at least `min_distance` instructions ahead of the
///   miss (distance ≈ IPC × LLC latency, so the fill completes in time);
/// * no further than `window` instructions (past that the prefetched line
///   risks eviction before use, and path probability decays);
/// * its *reach* — the estimated probability that execution at the candidate
///   arrives at the target within the window, the complement of AsmDB's
///   fanout criterion — must be at least `min_reach`.
///
/// Up to `max_sites` candidates (highest reach first) are chosen per target.
pub fn plan_insertions(
    cfg: &Cfg,
    targets: &[MissTarget],
    min_distance: u64,
    window: u64,
    min_reach: f64,
    max_sites: usize,
) -> Plan {
    let mut plan = Plan::default();
    let mut dedup: HashSet<(u64, u64)> = HashSet::new();

    for target in targets {
        let candidates = backward_walk(cfg, target, window);
        // Aggregate per block: best reach among eligible discoveries.
        let mut per_block: HashMap<BlockId, Candidate> = HashMap::new();
        for (block, c) in candidates {
            if c.distance < min_distance || c.reach < min_reach {
                continue;
            }
            per_block
                .entry(block)
                .and_modify(|e| {
                    if c.reach > e.reach {
                        *e = c;
                    }
                })
                .or_insert(c);
        }
        let mut eligible: Vec<(BlockId, Candidate)> = per_block.into_iter().collect();
        eligible.sort_by(|a, b| {
            // total_cmp: reach is a product of edge probabilities and cannot
            // be NaN, but the plan is safety-checked downstream (P005), so
            // keep the comparator total rather than panicking.
            b.1.reach
                .total_cmp(&a.1.reach)
                .then(a.1.distance.cmp(&b.1.distance))
        });
        if eligible.is_empty() {
            plan.uncovered_lines += 1;
            continue;
        }
        plan.targeted_lines += 1;
        for (block, cand) in eligible.into_iter().take(max_sites) {
            let anchor = cfg.block(block).last_pc();
            if !dedup.insert((anchor.raw(), target.line.number())) {
                continue;
            }
            plan.insertions.push(Insertion {
                anchor,
                before: cfg.block(block).ends_with_branch,
                target_pc: target.first_pc,
                distance: cand.distance,
                reach: cand.reach,
            });
        }
    }
    plan.insertions.sort_by_key(|i| (i.anchor, i.target_pc));
    plan
}

/// How many distinct distances per block the backward walk explores.
///
/// Allowing revisits lets the walk wrap around loop back-edges and discover
/// insertion points a full iteration (or more) before the miss — exactly the
/// Figure-3 analysis in the paper, where a block that is "not the minimum
/// distance away" on the short path can still qualify via a longer path.
const MAX_VISITS_PER_BLOCK: u32 = 4;

/// Bounded best-first search over reversed edges from the target block.
///
/// A state `(B, d, r)` means: execution entering block `B` reaches the
/// target `d` instructions later with estimated probability `r`. A
/// predecessor `P` of `B` can host a prefetch at its *end*, `d` instructions
/// ahead of the miss, reaching it with probability `r × p(P→B)`; the state
/// propagated to `P` adds `len(P)`. Cycles are explored up to
/// [`MAX_VISITS_PER_BLOCK`] distinct distances per block, bounded by
/// `window`.
fn backward_walk(cfg: &Cfg, target: &MissTarget, window: u64) -> Vec<(BlockId, Candidate)> {
    let target_block = cfg.block(target.block);
    let offset_in_block = target_block
        .pcs
        .iter()
        .position(|&pc| pc == target.first_pc)
        .expect("target pc is in its block") as u64;

    // Heap orders by distance; reach rides along via a parallel encoding
    // (f64 bits are not Ord, so states carry reach separately).
    struct State {
        dist: u64,
        block: BlockId,
        reach: f64,
    }
    let mut frontier: BinaryHeap<Reverse<(u64, BlockId, u64)>> = BinaryHeap::new();
    let mut reaches: HashMap<(BlockId, u64), f64> = HashMap::new();
    let mut visits: HashMap<BlockId, u32> = HashMap::new();
    let mut candidates: Vec<(BlockId, Candidate)> = Vec::new();

    let push = |frontier: &mut BinaryHeap<Reverse<(u64, BlockId, u64)>>,
                reaches: &mut HashMap<(BlockId, u64), f64>,
                s: State| {
        let key = (s.block, s.dist);
        let known = reaches.entry(key).or_insert(0.0);
        if s.reach > *known {
            *known = s.reach;
            frontier.push(Reverse((s.dist, s.block, s.dist)));
        }
    };
    push(
        &mut frontier,
        &mut reaches,
        State {
            dist: offset_in_block,
            block: target.block,
            reach: 1.0,
        },
    );

    while let Some(Reverse((d, block, _))) = frontier.pop() {
        if d > window {
            break;
        }
        let count = visits.entry(block).or_insert(0);
        if *count >= MAX_VISITS_PER_BLOCK {
            continue;
        }
        *count += 1;
        let r = reaches[&(block, d)];
        for &(pred, edge_count) in &cfg.block(block).preds {
            let pred_block = cfg.block(pred);
            let out_total: u64 = pred_block.succs.iter().map(|&(_, c)| c).sum();
            if out_total == 0 {
                continue;
            }
            let prob = edge_count as f64 / out_total as f64;
            let reach = r * prob;
            // Candidate: a prefetch at the end of `pred`, `d` instructions
            // ahead of the miss.
            candidates.push((pred, Candidate { distance: d, reach }));
            let nd = d + pred_block.len() as u64;
            if nd <= window && reach > 1e-4 {
                push(
                    &mut frontier,
                    &mut reaches,
                    State {
                        dist: nd,
                        block: pred,
                        reach,
                    },
                );
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_trace::TraceBuilder;
    use swip_types::Addr;

    /// A chain of blocks A(0x0..) -> B(0x100..) -> C(0x200..), each 8
    /// instructions ending in a jump, executed `reps` times.
    fn chain_trace(reps: usize) -> swip_trace::Trace {
        let mut b = TraceBuilder::new("chain");
        for _ in 0..reps {
            b.set_pc(Addr::new(0x0));
            for _ in 0..7 {
                b.alu();
            }
            b.jump(Addr::new(0x100));
            for _ in 0..7 {
                b.alu();
            }
            b.jump(Addr::new(0x200));
            for _ in 0..7 {
                b.alu();
            }
            b.jump(Addr::new(0x0));
        }
        b.finish()
    }

    fn misses_at(line: Addr, count: u64) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        m.insert(line.line().number(), count);
        m
    }

    #[test]
    fn select_targets_ranks_and_filters() {
        let trace = chain_trace(4);
        let cfg = Cfg::from_trace(&trace);
        let mut misses = HashMap::new();
        misses.insert(Addr::new(0x200).line().number(), 100);
        misses.insert(Addr::new(0x100).line().number(), 50);
        misses.insert(Addr::new(0x0).line().number(), 1); // below min_misses
        let targets = select_targets(&cfg, &misses, 8, 1.0, 16);
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0].line, Addr::new(0x200).line());
        assert_eq!(targets[0].misses, 100);
        assert_eq!(targets[1].line, Addr::new(0x100).line());
    }

    #[test]
    fn coverage_cuts_the_tail() {
        let trace = chain_trace(4);
        let cfg = Cfg::from_trace(&trace);
        let mut misses = HashMap::new();
        misses.insert(Addr::new(0x200).line().number(), 90);
        misses.insert(Addr::new(0x100).line().number(), 10);
        let targets = select_targets(&cfg, &misses, 1, 0.85, 16);
        assert_eq!(targets.len(), 1, "90% coverage met by the top line");
    }

    #[test]
    fn insertion_respects_min_distance() {
        let trace = chain_trace(8);
        let cfg = Cfg::from_trace(&trace);
        let targets = select_targets(&cfg, &misses_at(Addr::new(0x200), 100), 1, 1.0, 4);
        assert_eq!(targets.len(), 1);
        // Chain with a back edge: end-of-B sits 0 instructions from C (too
        // close); end-of-A sits 8 away; wrap-around candidates sit a full
        // cycle (24) further. Everything selected must respect the minimum.
        let plan = plan_insertions(&cfg, &targets, 5, 100, 0.5, 4);
        assert!(!plan.is_empty());
        assert!(
            plan.insertions.iter().any(|i| i.anchor == Addr::new(7 * 4)),
            "A's jump qualifies at distance 8"
        );
        for ins in &plan.insertions {
            assert!(ins.before);
            assert_eq!(ins.target_pc, Addr::new(0x200));
            assert!(ins.distance >= 5);
        }
    }

    #[test]
    fn unreachable_min_distance_reports_uncovered() {
        let trace = chain_trace(8);
        let cfg = Cfg::from_trace(&trace);
        let targets = select_targets(&cfg, &misses_at(Addr::new(0x200), 100), 1, 1.0, 4);
        // min_distance beyond the window: nothing qualifies... window too
        // small to reach any block that far back.
        let plan = plan_insertions(&cfg, &targets, 50, 60, 0.5, 4);
        // The loop back-edge lets distance grow: A->B->C->A->B->C... so 50+
        // is reachable around the cycle, but reach decays only at branch
        // points (all jumps are unconditional => prob 1). Either outcome is
        // structurally valid; just assert accounting is consistent.
        assert_eq!(plan.targeted_lines + plan.uncovered_lines, 1);
    }

    #[test]
    fn low_probability_paths_fail_fanout() {
        // Entry block branches to the target only 10% of the time.
        let mut b = TraceBuilder::new("fanout");
        for i in 0..40 {
            let to_target = i % 10 == 0;
            b.set_pc(Addr::new(0x0));
            for _ in 0..7 {
                b.alu();
            }
            b.cond_branch(Addr::new(0x200), to_target);
            if !to_target {
                // fall-through block
                for _ in 0..7 {
                    b.alu();
                }
                b.jump(Addr::new(0x0));
            } else {
                for _ in 0..7 {
                    b.alu();
                }
                b.jump(Addr::new(0x0));
                // jump back from target block
            }
        }
        let trace = b.finish();
        let cfg = Cfg::from_trace(&trace);
        let targets = select_targets(&cfg, &misses_at(Addr::new(0x200), 100), 1, 1.0, 4);
        assert_eq!(targets.len(), 1);
        let strict = plan_insertions(&cfg, &targets, 4, 64, 0.5, 4);
        assert!(
            strict.is_empty(),
            "10% path must fail a 50% reach threshold"
        );
        let lax = plan_insertions(&cfg, &targets, 4, 64, 0.05, 4);
        assert!(!lax.is_empty(), "10% path passes a 5% reach threshold");
    }

    #[test]
    fn empty_profile_plans_nothing() {
        let trace = chain_trace(2);
        let cfg = Cfg::from_trace(&trace);
        let targets = select_targets(&cfg, &HashMap::new(), 1, 1.0, 4);
        assert!(targets.is_empty());
        let plan = plan_insertions(&cfg, &targets, 4, 64, 0.5, 4);
        assert!(plan.is_empty());
    }
}
