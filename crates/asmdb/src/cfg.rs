//! Control-flow-graph reconstruction from a dynamic trace.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use swip_trace::Trace;
use swip_types::{Addr, Instruction};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// One reconstructed basic block.
#[derive(Clone, Debug)]
pub struct CfgBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// Addresses of the block's instructions, in layout order.
    pub pcs: Vec<Addr>,
    /// Dynamic executions of the block.
    pub exec_count: u64,
    /// Weighted successor edges (block, taken-transition count).
    pub succs: Vec<(BlockId, u64)>,
    /// Weighted predecessor edges.
    pub preds: Vec<(BlockId, u64)>,
    /// True when the block's final instruction is a control transfer.
    pub ends_with_branch: bool,
}

impl CfgBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True for an empty block (never produced by reconstruction).
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// The block's final instruction address.
    pub fn last_pc(&self) -> Addr {
        *self.pcs.last().expect("blocks are never empty")
    }
}

/// A control-flow graph reconstructed from a dynamic instruction trace.
///
/// Leaders are derived from observed control flow: the trace start, every
/// observed branch target, and every fall-through successor of a branch.
/// Blocks are maximal straight-line runs between leaders; edges carry
/// observed transition counts, which later stages use both as execution
/// frequencies and as path probabilities (AsmDB's fanout).
///
/// # Examples
///
/// ```
/// use swip_asmdb::Cfg;
/// use swip_trace::TraceBuilder;
/// use swip_types::Addr;
///
/// let mut b = TraceBuilder::new("loop");
/// for _ in 0..3 {
///     b.set_pc(Addr::new(0x100));
///     b.alu();
///     b.cond_branch(Addr::new(0x100), true);
/// }
/// let cfg = Cfg::from_trace(&b.finish());
/// assert_eq!(cfg.len(), 1); // one block, a self-loop
/// let block = cfg.block(0);
/// assert_eq!(block.exec_count, 3);
/// ```
#[derive(Clone, Debug)]
pub struct Cfg {
    blocks: Vec<CfgBlock>,
    pc_to_block: HashMap<u64, BlockId>,
}

impl Cfg {
    /// Reconstructs the CFG of `trace`.
    pub fn from_trace(trace: &Trace) -> Cfg {
        // Static view: every executed PC, with its instruction metadata
        // (kinds are stable per PC — guaranteed by the trace model).
        let mut static_instrs: BTreeMap<u64, Instruction> = BTreeMap::new();
        for i in trace.iter() {
            static_instrs.entry(i.pc.raw()).or_insert(*i);
        }

        // Leaders: trace start, branch targets, fall-throughs after branches.
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        if let Some(first) = trace.instructions().first() {
            leaders.insert(first.pc.raw());
        }
        for (pc, i) in &static_instrs {
            if i.is_branch() {
                if let Some(t) = i.branch_target() {
                    leaders.insert(t.raw());
                }
                leaders.insert(pc + i.size as u64);
            }
        }
        // Any PC not contiguous with its predecessor starts a block (gaps
        // between functions).
        let pcs: Vec<u64> = static_instrs.keys().copied().collect();
        for w in pcs.windows(2) {
            let size = static_instrs[&w[0]].size as u64;
            if w[0] + size != w[1] {
                leaders.insert(w[1]);
            }
        }

        // Blocks: maximal runs between leaders.
        let mut blocks: Vec<CfgBlock> = Vec::new();
        let mut pc_to_block: HashMap<u64, BlockId> = HashMap::new();
        let mut current: Vec<Addr> = Vec::new();
        let flush = |current: &mut Vec<Addr>,
                     blocks: &mut Vec<CfgBlock>,
                     pc_to_block: &mut HashMap<u64, BlockId>| {
            if current.is_empty() {
                return;
            }
            let id = blocks.len();
            for pc in current.iter() {
                pc_to_block.insert(pc.raw(), id);
            }
            blocks.push(CfgBlock {
                start: current[0],
                pcs: std::mem::take(current),
                exec_count: 0,
                succs: Vec::new(),
                preds: Vec::new(),
                ends_with_branch: false,
            });
        };
        for (idx, (&pc, i)) in static_instrs.iter().enumerate() {
            if idx > 0 && leaders.contains(&pc) {
                flush(&mut current, &mut blocks, &mut pc_to_block);
            }
            current.push(Addr::new(pc));
            if i.is_branch() {
                flush(&mut current, &mut blocks, &mut pc_to_block);
            }
        }
        flush(&mut current, &mut blocks, &mut pc_to_block);
        for b in &mut blocks {
            b.ends_with_branch = static_instrs[&b.last_pc().raw()].is_branch();
        }

        let mut cfg = Cfg {
            blocks,
            pc_to_block,
        };

        // Dynamic pass: execution counts and weighted edges.
        let mut edges: HashMap<(BlockId, BlockId), u64> = HashMap::new();
        let mut prev_block: Option<BlockId> = None;
        for i in trace.iter() {
            let id = cfg.pc_to_block[&i.pc.raw()];
            let is_block_start = cfg.blocks[id].start == i.pc;
            if is_block_start {
                cfg.blocks[id].exec_count += 1;
                if let Some(p) = prev_block {
                    *edges.entry((p, id)).or_insert(0) += 1;
                }
            }
            prev_block = Some(id);
        }
        for ((from, to), count) in edges {
            cfg.blocks[from].succs.push((to, count));
            cfg.blocks[to].preds.push((from, count));
        }
        for b in &mut cfg.blocks {
            b.succs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            b.preds.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        }
        cfg
    }

    /// Rebuilds a CFG from raw blocks; the pc → block index is derived from
    /// each block's `pcs`.
    ///
    /// This is the construction surface for tools that need to fabricate or
    /// perturb a graph directly — `swip-analyze`'s well-formedness rules are
    /// exercised against graphs built this way. [`Cfg::from_trace`] remains
    /// the only production path and the well-formedness baseline.
    pub fn from_parts(blocks: Vec<CfgBlock>) -> Cfg {
        let mut pc_to_block = HashMap::new();
        for (id, b) in blocks.iter().enumerate() {
            for pc in &b.pcs {
                pc_to_block.insert(pc.raw(), id);
            }
        }
        Cfg {
            blocks,
            pc_to_block,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the CFG has no blocks (empty trace).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &CfgBlock {
        &self.blocks[id]
    }

    /// Iterates over all blocks.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &CfgBlock)> {
        self.blocks.iter().enumerate()
    }

    /// The block containing `pc`, if `pc` was ever executed.
    pub fn block_of(&self, pc: Addr) -> Option<BlockId> {
        self.pc_to_block.get(&pc.raw()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swip_trace::TraceBuilder;

    #[test]
    fn straight_line_with_gap_splits_blocks() {
        let mut b = TraceBuilder::new("gap");
        b.alu().alu();
        b.set_pc(Addr::new(0x100));
        b.alu();
        let cfg = Cfg::from_trace(&b.finish());
        assert_eq!(cfg.len(), 2);
        assert_eq!(cfg.block(0).len(), 2);
        assert_eq!(cfg.block(1).start, Addr::new(0x100));
    }

    #[test]
    fn branch_ends_a_block_and_edges_count() {
        // A diamond: entry -> (taken|fallthrough) -> join, executed twice
        // with different outcomes.
        let mut b = TraceBuilder::new("diamond");
        for taken in [true, false] {
            b.set_pc(Addr::new(0x0));
            b.alu();
            b.cond_branch(Addr::new(0x20), taken); // skip to 0x20 when taken
            if !taken {
                // fall-through block at 0x8
                b.alu();
                b.jump(Addr::new(0x20));
            }
            b.alu(); // join block at 0x20
            b.jump(Addr::new(0x0));
        }
        let cfg = Cfg::from_trace(&b.finish());
        let entry = cfg.block_of(Addr::new(0x0)).unwrap();
        let fall = cfg.block_of(Addr::new(0x8)).unwrap();
        let join = cfg.block_of(Addr::new(0x20)).unwrap();
        assert_ne!(entry, join);
        let entry_block = cfg.block(entry);
        assert_eq!(entry_block.exec_count, 2);
        let to_join = entry_block.succs.iter().find(|(t, _)| *t == join).unwrap();
        let to_fall = entry_block.succs.iter().find(|(t, _)| *t == fall).unwrap();
        assert_eq!(to_join.1, 1);
        assert_eq!(to_fall.1, 1);
    }

    #[test]
    fn self_loop_edge() {
        let mut b = TraceBuilder::new("self");
        for _ in 0..5 {
            b.set_pc(Addr::new(0x40));
            b.alu();
            b.cond_branch(Addr::new(0x40), true);
        }
        let cfg = Cfg::from_trace(&b.finish());
        let id = cfg.block_of(Addr::new(0x40)).unwrap();
        let block = cfg.block(id);
        assert_eq!(block.exec_count, 5);
        let self_edge = block.succs.iter().find(|(t, _)| *t == id).unwrap();
        assert_eq!(self_edge.1, 4);
    }

    #[test]
    fn every_pc_maps_to_its_block() {
        let mut b = TraceBuilder::new("map");
        b.alu().alu();
        b.cond_branch(Addr::new(0x0), false);
        b.alu();
        let trace = b.finish();
        let cfg = Cfg::from_trace(&trace);
        for i in trace.iter() {
            let id = cfg.block_of(i.pc).expect("every executed pc is mapped");
            assert!(cfg.block(id).pcs.contains(&i.pc));
        }
    }

    #[test]
    fn empty_trace_gives_empty_cfg() {
        let cfg = Cfg::from_trace(&swip_trace::Trace::from_instructions("e", vec![]));
        assert!(cfg.is_empty());
        assert_eq!(cfg.len(), 0);
    }
}
