//! Chrome trace-event export of the scenario timeline.
//!
//! Converts the cycle-sampled [`ScenarioTimeline`] samples into the Trace
//! Event JSON format understood by `chrome://tracing` and Perfetto: one
//! complete ("X") event per sample, with the simulated cycle as the
//! timestamp and the sample stride as the duration, on one track per
//! scenario so the S1/S2/S3/empty bands stack visually.

use swip_frontend::{Scenario, TimelineSample};

use crate::json::Json;

/// Stable track/name label for a scenario.
fn scenario_label(s: Scenario) -> &'static str {
    match s {
        Scenario::ShootThrough => "S1 shoot-through",
        Scenario::StallingHead => "S2 stalling-head",
        Scenario::ShadowStall => "S3 shadow-stall",
        Scenario::Empty => "empty",
    }
}

/// Trace-viewer thread id for a scenario, so each scenario renders as its
/// own row.
fn scenario_tid(s: Scenario) -> u64 {
    match s {
        Scenario::ShootThrough => 1,
        Scenario::StallingHead => 2,
        Scenario::ShadowStall => 3,
        Scenario::Empty => 4,
    }
}

/// Renders timeline samples as a Chrome trace-event JSON document.
///
/// `stride` is the sampling stride the timeline was recorded with; it
/// becomes each event's duration so adjacent samples tile the time axis.
/// Timestamps are simulated cycles (the viewer labels them as µs; the
/// unit is fictional either way).
pub fn to_chrome_trace(samples: &[TimelineSample], stride: u64) -> String {
    let dur = stride.max(1);
    let events: Vec<Json> = samples
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(scenario_label(s.scenario).into())),
                ("cat".into(), Json::Str("scenario".into())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::U64(s.cycle)),
                ("dur".into(), Json::U64(dur)),
                ("pid".into(), Json::U64(0)),
                ("tid".into(), Json::U64(scenario_tid(s.scenario))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
    .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn samples() -> Vec<TimelineSample> {
        vec![
            TimelineSample {
                cycle: 0,
                scenario: Scenario::Empty,
            },
            TimelineSample {
                cycle: 64,
                scenario: Scenario::ShootThrough,
            },
            TimelineSample {
                cycle: 128,
                scenario: Scenario::StallingHead,
            },
        ]
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let text = to_chrome_trace(&samples(), 64);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 3);
        let e = &events[1];
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("ts").and_then(Json::as_u64), Some(64));
        assert_eq!(e.get("dur").and_then(Json::as_u64), Some(64));
        assert_eq!(
            e.get("name").and_then(Json::as_str),
            Some("S1 shoot-through")
        );
    }

    #[test]
    fn each_scenario_gets_its_own_track() {
        let text = to_chrome_trace(&samples(), 64);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let tids: Vec<u64> = events
            .iter()
            .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(tids, vec![4, 1, 2]);
    }

    #[test]
    fn zero_stride_still_produces_nonzero_durations() {
        let text = to_chrome_trace(&samples()[..1], 0);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("dur").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn empty_timeline_exports_an_empty_event_array() {
        let text = to_chrome_trace(&[], 64);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
    }
}
