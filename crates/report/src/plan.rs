//! [`PlanSpec`]: the wire form of an experiment plan.
//!
//! `swip-serve` accepts jobs as JSON documents in the same [`Json`] value
//! type the run reports use. A spec names workloads and configurations by
//! the labels they carry in a [`RunReport`](crate::RunReport); resolving
//! those names against a live session (and rejecting unknown ones) is the
//! bench layer's job — this type only fixes the schema:
//!
//! ```json
//! {"workloads": ["secret_srv12"], "configs": ["ftq2_fdp", "ftq24_fdp"]}
//! ```
//!
//! All keys are optional; an omitted (or empty) axis means "all of them".
//! `{}` is therefore the default sweep the serving session was scoped to.
//! A `prefetchers` key selects prefetcher-zoo mechanisms by label
//! (`"fdp"`, `"asmdb"`, `"mana"`, `"shadow_btb"`); the bench layer
//! resolves each into its canonical configuration and unions it with the
//! `configs` axis.
//!
//! A spec may additionally carry custom prefetch insertions to be
//! *statically admitted* (verified against each selected workload's CFG by
//! `swip-analyze`'s coverage rules) before the job queues:
//!
//! ```json
//! {"workloads": ["secret_srv12"],
//!  "insertions": [{"anchor": 4160, "target": 8256, "distance": 48, "reach": 0.9}]}
//! ```
//!
//! Admission is the only consumer: insertions do not change what the job
//! executes (the session's own AsmDB plans do), they let a client ask "would
//! this hand-written plan be sound here?" and get a 400 with rule ids when
//! it would not.

use std::fmt;

use crate::json::{Json, JsonError};

/// A failure decoding a [`PlanSpec`] from JSON.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanSpecError {
    /// The text was not valid JSON.
    Json(JsonError),
    /// The JSON was valid but did not match the plan schema.
    Schema(String),
}

impl fmt::Display for PlanSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanSpecError::Json(e) => write!(f, "{e}"),
            PlanSpecError::Schema(what) => write!(f, "malformed plan: {what}"),
        }
    }
}

impl std::error::Error for PlanSpecError {}

impl From<JsonError> for PlanSpecError {
    fn from(e: JsonError) -> Self {
        PlanSpecError::Json(e)
    }
}

/// One custom prefetch insertion offered for static admission: prefetch
/// the line of `target` from the instruction at `anchor`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct InsertionSpec {
    /// Address of the anchor instruction the prefetch attaches to.
    pub anchor: u64,
    /// Address whose cache line the prefetch warms.
    pub target: u64,
    /// Claimed anchor→target distance in instructions.
    pub distance: u64,
    /// Claimed probability the target executes after the anchor.
    pub reach: f64,
}

impl InsertionSpec {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("anchor".into(), Json::U64(self.anchor)),
            ("target".into(), Json::U64(self.target)),
            ("distance".into(), Json::U64(self.distance)),
            ("reach".into(), Json::F64(self.reach)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, PlanSpecError> {
        let Json::Obj(pairs) = v else {
            return Err(PlanSpecError::Schema(
                "insertions entries must be objects".into(),
            ));
        };
        let mut spec = InsertionSpec {
            anchor: 0,
            target: 0,
            distance: 0,
            reach: 1.0,
        };
        let mut seen_anchor = false;
        let mut seen_target = false;
        for (key, value) in pairs {
            match key.as_str() {
                "anchor" | "target" | "distance" => {
                    let Some(n) = value.as_u64() else {
                        return Err(PlanSpecError::Schema(format!(
                            "insertion {key} must be a non-negative integer"
                        )));
                    };
                    match key.as_str() {
                        "anchor" => {
                            spec.anchor = n;
                            seen_anchor = true;
                        }
                        "target" => {
                            spec.target = n;
                            seen_target = true;
                        }
                        _ => spec.distance = n,
                    }
                }
                "reach" => {
                    let Some(x) = value.as_f64() else {
                        return Err(PlanSpecError::Schema(
                            "insertion reach must be a number".into(),
                        ));
                    };
                    spec.reach = x;
                }
                other => {
                    return Err(PlanSpecError::Schema(format!(
                        "unknown insertion key {other:?} (expected \"anchor\" / \"target\" / \
                         \"distance\" / \"reach\")"
                    )));
                }
            }
        }
        if !seen_anchor || !seen_target {
            return Err(PlanSpecError::Schema(
                "insertions require both anchor and target".into(),
            ));
        }
        Ok(spec)
    }
}

/// An experiment plan by name: which workloads to run under which
/// configurations. Empty axes mean "all".
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PlanSpec {
    /// Workload names (`secret_srv12`, …); empty selects every workload
    /// the session is scoped to.
    pub workloads: Vec<String>,
    /// Configuration labels (`ftq2_fdp`, `ftq24_asmdb`, …); empty selects
    /// all six.
    pub configs: Vec<String>,
    /// Custom insertions to statically admit against every selected
    /// workload (empty = none; execution is unaffected either way).
    pub insertions: Vec<InsertionSpec>,
    /// Prefetcher labels (`fdp`, `mana`, …); each resolves to its
    /// canonical configuration and unions with `configs` (empty = none).
    pub prefetchers: Vec<String>,
}

impl PlanSpec {
    /// Decodes a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`PlanSpecError::Json`] on malformed JSON, [`PlanSpecError::Schema`]
    /// when the document is not an object of string arrays (unknown keys
    /// are rejected so typos like `"workload"` fail loudly instead of
    /// silently selecting everything).
    pub fn from_json_str(text: &str) -> Result<Self, PlanSpecError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Decodes a spec from a [`Json`] value (see
    /// [`PlanSpec::from_json_str`]).
    ///
    /// # Errors
    ///
    /// [`PlanSpecError::Schema`] on shape mismatches or unknown keys.
    pub fn from_json_value(v: &Json) -> Result<Self, PlanSpecError> {
        let Json::Obj(pairs) = v else {
            return Err(PlanSpecError::Schema("plan must be a JSON object".into()));
        };
        let mut spec = PlanSpec::default();
        for (key, value) in pairs {
            if key == "insertions" {
                let Some(items) = value.as_arr() else {
                    return Err(PlanSpecError::Schema(
                        "insertions must be an array of objects".into(),
                    ));
                };
                for item in items {
                    spec.insertions.push(InsertionSpec::from_json(item)?);
                }
                continue;
            }
            let target = match key.as_str() {
                "workloads" => &mut spec.workloads,
                "configs" => &mut spec.configs,
                "prefetchers" => &mut spec.prefetchers,
                other => {
                    return Err(PlanSpecError::Schema(format!(
                        "unknown key {other:?} (expected \"workloads\" / \"configs\" / \
                         \"prefetchers\" / \"insertions\")"
                    )))
                }
            };
            let Some(items) = value.as_arr() else {
                return Err(PlanSpecError::Schema(format!(
                    "{key} must be an array of strings"
                )));
            };
            for item in items {
                match item.as_str() {
                    Some(s) => target.push(s.to_string()),
                    None => {
                        return Err(PlanSpecError::Schema(format!(
                            "{key} entries must be strings"
                        )))
                    }
                }
            }
        }
        Ok(spec)
    }

    /// The spec as a [`Json`] object (the canonical submission body). The
    /// `prefetchers` and `insertions` keys appear only when non-empty, so
    /// v1 consumers never see them on a paper-sweep spec.
    pub fn to_json_value(&self) -> Json {
        let arr = |items: &[String]| Json::Arr(items.iter().cloned().map(Json::Str).collect());
        let mut pairs = vec![
            ("workloads".into(), arr(&self.workloads)),
            ("configs".into(), arr(&self.configs)),
        ];
        if !self.prefetchers.is_empty() {
            pairs.push(("prefetchers".into(), arr(&self.prefetchers)));
        }
        if !self.insertions.is_empty() {
            pairs.push((
                "insertions".into(),
                Json::Arr(self.insertions.iter().map(|i| i.to_json()).collect()),
            ));
        }
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_selects_everything() {
        let spec = PlanSpec::from_json_str("{}").unwrap();
        assert!(spec.workloads.is_empty());
        assert!(spec.configs.is_empty());
    }

    #[test]
    fn named_axes_round_trip() {
        let spec = PlanSpec {
            workloads: vec!["secret_srv12".into(), "public_srv_60".into()],
            configs: vec!["ftq2_fdp".into()],
            insertions: Vec::new(),
            prefetchers: Vec::new(),
        };
        let back = PlanSpec::from_json_value(&spec.to_json_value()).unwrap();
        assert_eq!(back, spec);
        assert!(!spec.to_json_value().render().contains("insertions"));
        assert!(!spec.to_json_value().render().contains("prefetchers"));
    }

    #[test]
    fn prefetchers_round_trip() {
        let spec = PlanSpec {
            workloads: Vec::new(),
            configs: Vec::new(),
            insertions: Vec::new(),
            prefetchers: vec!["mana".into(), "shadow_btb".into()],
        };
        let back = PlanSpec::from_json_value(&spec.to_json_value()).unwrap();
        assert_eq!(back, spec);
        assert!(spec.to_json_value().render().contains("prefetchers"));
        let spec = PlanSpec::from_json_str(r#"{"prefetchers": ["fdp"]}"#).unwrap();
        assert_eq!(spec.prefetchers, vec!["fdp".to_string()]);
        let err = PlanSpec::from_json_str(r#"{"prefetchers": [1]}"#).unwrap_err();
        assert!(err.to_string().contains("strings"), "{err}");
    }

    #[test]
    fn insertions_round_trip() {
        let spec = PlanSpec {
            workloads: vec!["secret_srv12".into()],
            configs: Vec::new(),
            insertions: vec![InsertionSpec {
                anchor: 0x1040,
                target: 0x2040,
                distance: 48,
                reach: 0.9,
            }],
            prefetchers: Vec::new(),
        };
        let back = PlanSpec::from_json_value(&spec.to_json_value()).unwrap();
        assert_eq!(back, spec);

        // reach defaults to 1.0 and distance to 0 when omitted.
        let spec =
            PlanSpec::from_json_str(r#"{"insertions": [{"anchor": 16, "target": 128}]}"#).unwrap();
        assert_eq!(spec.insertions.len(), 1);
        assert_eq!(spec.insertions[0].distance, 0);
        assert!((spec.insertions[0].reach - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insertion_schema_violations_are_named() {
        let err = PlanSpec::from_json_str(r#"{"insertions": "x"}"#).unwrap_err();
        assert!(err.to_string().contains("array"), "{err}");
        let err = PlanSpec::from_json_str(r#"{"insertions": [5]}"#).unwrap_err();
        assert!(err.to_string().contains("objects"), "{err}");
        let err = PlanSpec::from_json_str(r#"{"insertions": [{"anchor": 16}]}"#).unwrap_err();
        assert!(err.to_string().contains("target"), "{err}");
        let err =
            PlanSpec::from_json_str(r#"{"insertions": [{"anchor": 16, "goal": 1}]}"#).unwrap_err();
        assert!(err.to_string().contains("goal"), "{err}");
        let err = PlanSpec::from_json_str(r#"{"insertions": [{"anchor": -4, "target": 1}]}"#)
            .unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
    }

    #[test]
    fn schema_violations_are_named() {
        let err = PlanSpec::from_json_str("[]").unwrap_err();
        assert!(matches!(err, PlanSpecError::Schema(_)), "{err:?}");
        let err = PlanSpec::from_json_str(r#"{"workload": []}"#).unwrap_err();
        assert!(err.to_string().contains("workload"), "{err}");
        let err = PlanSpec::from_json_str(r#"{"workloads": "w"}"#).unwrap_err();
        assert!(err.to_string().contains("array"), "{err}");
        let err = PlanSpec::from_json_str(r#"{"configs": [1]}"#).unwrap_err();
        assert!(err.to_string().contains("strings"), "{err}");
        let err = PlanSpec::from_json_str("not json").unwrap_err();
        assert!(matches!(err, PlanSpecError::Json(_)), "{err:?}");
    }
}
