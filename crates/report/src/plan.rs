//! [`PlanSpec`]: the wire form of an experiment plan.
//!
//! `swip-serve` accepts jobs as JSON documents in the same [`Json`] value
//! type the run reports use. A spec names workloads and configurations by
//! the labels they carry in a [`RunReport`](crate::RunReport); resolving
//! those names against a live session (and rejecting unknown ones) is the
//! bench layer's job — this type only fixes the schema:
//!
//! ```json
//! {"workloads": ["secret_srv12"], "configs": ["ftq2_fdp", "ftq24_fdp"]}
//! ```
//!
//! Both keys are optional; an omitted (or empty) axis means "all of them".
//! `{}` is therefore the full sweep the serving session was scoped to.

use std::fmt;

use crate::json::{Json, JsonError};

/// A failure decoding a [`PlanSpec`] from JSON.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanSpecError {
    /// The text was not valid JSON.
    Json(JsonError),
    /// The JSON was valid but did not match the plan schema.
    Schema(String),
}

impl fmt::Display for PlanSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanSpecError::Json(e) => write!(f, "{e}"),
            PlanSpecError::Schema(what) => write!(f, "malformed plan: {what}"),
        }
    }
}

impl std::error::Error for PlanSpecError {}

impl From<JsonError> for PlanSpecError {
    fn from(e: JsonError) -> Self {
        PlanSpecError::Json(e)
    }
}

/// An experiment plan by name: which workloads to run under which
/// configurations. Empty axes mean "all".
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PlanSpec {
    /// Workload names (`secret_srv12`, …); empty selects every workload
    /// the session is scoped to.
    pub workloads: Vec<String>,
    /// Configuration labels (`ftq2_fdp`, `ftq24_asmdb`, …); empty selects
    /// all six.
    pub configs: Vec<String>,
}

impl PlanSpec {
    /// Decodes a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`PlanSpecError::Json`] on malformed JSON, [`PlanSpecError::Schema`]
    /// when the document is not an object of string arrays (unknown keys
    /// are rejected so typos like `"workload"` fail loudly instead of
    /// silently selecting everything).
    pub fn from_json_str(text: &str) -> Result<Self, PlanSpecError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Decodes a spec from a [`Json`] value (see
    /// [`PlanSpec::from_json_str`]).
    ///
    /// # Errors
    ///
    /// [`PlanSpecError::Schema`] on shape mismatches or unknown keys.
    pub fn from_json_value(v: &Json) -> Result<Self, PlanSpecError> {
        let Json::Obj(pairs) = v else {
            return Err(PlanSpecError::Schema("plan must be a JSON object".into()));
        };
        let mut spec = PlanSpec::default();
        for (key, value) in pairs {
            let target = match key.as_str() {
                "workloads" => &mut spec.workloads,
                "configs" => &mut spec.configs,
                other => {
                    return Err(PlanSpecError::Schema(format!(
                        "unknown key {other:?} (expected \"workloads\" / \"configs\")"
                    )))
                }
            };
            let Some(items) = value.as_arr() else {
                return Err(PlanSpecError::Schema(format!(
                    "{key} must be an array of strings"
                )));
            };
            for item in items {
                match item.as_str() {
                    Some(s) => target.push(s.to_string()),
                    None => {
                        return Err(PlanSpecError::Schema(format!(
                            "{key} entries must be strings"
                        )))
                    }
                }
            }
        }
        Ok(spec)
    }

    /// The spec as a [`Json`] object (the canonical submission body).
    pub fn to_json_value(&self) -> Json {
        let arr = |items: &[String]| Json::Arr(items.iter().cloned().map(Json::Str).collect());
        Json::Obj(vec![
            ("workloads".into(), arr(&self.workloads)),
            ("configs".into(), arr(&self.configs)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_selects_everything() {
        let spec = PlanSpec::from_json_str("{}").unwrap();
        assert!(spec.workloads.is_empty());
        assert!(spec.configs.is_empty());
    }

    #[test]
    fn named_axes_round_trip() {
        let spec = PlanSpec {
            workloads: vec!["secret_srv12".into(), "public_srv_60".into()],
            configs: vec!["ftq2_fdp".into()],
        };
        let back = PlanSpec::from_json_value(&spec.to_json_value()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn schema_violations_are_named() {
        let err = PlanSpec::from_json_str("[]").unwrap_err();
        assert!(matches!(err, PlanSpecError::Schema(_)), "{err:?}");
        let err = PlanSpec::from_json_str(r#"{"workload": []}"#).unwrap_err();
        assert!(err.to_string().contains("workload"), "{err}");
        let err = PlanSpec::from_json_str(r#"{"workloads": "w"}"#).unwrap_err();
        assert!(err.to_string().contains("array"), "{err}");
        let err = PlanSpec::from_json_str(r#"{"configs": [1]}"#).unwrap_err();
        assert!(err.to_string().contains("strings"), "{err}");
        let err = PlanSpec::from_json_str("not json").unwrap_err();
        assert!(matches!(err, PlanSpecError::Json(_)), "{err:?}");
    }
}
