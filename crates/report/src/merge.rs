//! Deterministic reassembly of sharded plan reports.
//!
//! `swip-fleet` slices an experiment plan into single-cell shards — one
//! (workload, config) pair each — and runs every shard on whichever
//! worker gets to it first. Each worker answers with a partial
//! [`RunReport`] produced by `build_plan_report`, i.e. a `figure: "plan"`
//! document with empty session counters and `job_seconds: 0.0`.
//!
//! [`merge_plan_reports`] folds those partials back into one report that
//! is byte-identical to what a single node running the whole plan would
//! have emitted. The caller supplies the plan order (workload names, each
//! with its config labels in canonical order); arrival order of the
//! partials is irrelevant by construction, which is what makes the merge
//! safe under retries and dead-worker re-dispatch. Duplicate cells — the
//! normal outcome of re-dispatching a shard whose first run was lost in
//! flight — are accepted only if they agree exactly; a disagreement means
//! a worker broke the determinism contract and is reported as an error
//! rather than silently resolved.

use std::collections::HashMap;
use std::fmt;

use crate::run_report::{ConfigReport, RunReport, WorkloadReport};

/// Why a set of partial reports could not be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No partial reports were supplied.
    NoPartials,
    /// A partial is not a `figure: "plan"` report.
    NotAPlanReport {
        /// The figure the offending partial carries.
        figure: String,
    },
    /// Two partials disagree on a scale knob that must be uniform across
    /// the fleet (schema version, instructions, stride, or threads).
    KnobMismatch {
        /// Which knob disagreed.
        field: &'static str,
        /// The value the first partial established.
        expected: u64,
        /// The conflicting value.
        found: u64,
    },
    /// The plan order names a cell no partial provided.
    MissingCell {
        /// Workload name of the missing cell.
        workload: String,
        /// Config label of the missing cell.
        config: String,
    },
    /// Two partials provided the same cell with different measurements —
    /// a violation of the byte-determinism contract.
    ConflictingCell {
        /// Workload name of the conflicting cell.
        workload: String,
        /// Config label of the conflicting cell.
        config: String,
    },
    /// Two partials provided different non-empty coverage blocks for the
    /// same workload.
    ConflictingCoverage {
        /// Workload whose coverage blocks disagree.
        workload: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoPartials => write!(f, "no partial reports to merge"),
            MergeError::NotAPlanReport { figure } => {
                write!(f, "partial report has figure {figure:?}, expected \"plan\"")
            }
            MergeError::KnobMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "partial reports disagree on {field}: {expected} vs {found}"
            ),
            MergeError::MissingCell { workload, config } => {
                write!(f, "no partial report covers cell ({workload}, {config})")
            }
            MergeError::ConflictingCell { workload, config } => write!(
                f,
                "cell ({workload}, {config}) was measured twice with different results \
                 (determinism contract violated)"
            ),
            MergeError::ConflictingCoverage { workload } => write!(
                f,
                "workload {workload} has conflicting coverage blocks across partials"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges partial plan reports back into one plan-order [`RunReport`].
///
/// `order` is the plan's deterministic shape: workload names in plan
/// order, each paired with its config labels in canonical config order.
/// `partials` may arrive in any order and may overlap (re-dispatched
/// shards); every cell named by `order` must be covered, duplicates must
/// agree exactly, and all partials must share the plan knobs. The result
/// is sealed and byte-identical to a single-node `build_plan_report` run
/// of the same plan.
pub fn merge_plan_reports(
    order: &[(String, Vec<String>)],
    partials: &[RunReport],
) -> Result<RunReport, MergeError> {
    let first = partials.first().ok_or(MergeError::NoPartials)?;
    let mut cells: HashMap<(&str, &str), &ConfigReport> = HashMap::new();
    let mut coverage: HashMap<&str, &[(String, u64)]> = HashMap::new();

    for p in partials {
        if p.figure != "plan" {
            return Err(MergeError::NotAPlanReport {
                figure: p.figure.clone(),
            });
        }
        for (field, expected, found) in [
            ("version", first.version, p.version),
            ("instructions", first.instructions, p.instructions),
            ("stride", first.stride, p.stride),
            ("threads", first.threads, p.threads),
        ] {
            if expected != found {
                return Err(MergeError::KnobMismatch {
                    field,
                    expected,
                    found,
                });
            }
        }
        for w in &p.workloads {
            if !w.coverage.is_empty() {
                match coverage.get(w.name.as_str()) {
                    None => {
                        coverage.insert(&w.name, &w.coverage);
                    }
                    Some(seen) if *seen != w.coverage.as_slice() => {
                        return Err(MergeError::ConflictingCoverage {
                            workload: w.name.clone(),
                        });
                    }
                    Some(_) => {}
                }
            }
            for c in &w.configs {
                match cells.get(&(w.name.as_str(), c.config.as_str())) {
                    None => {
                        cells.insert((&w.name, &c.config), c);
                    }
                    Some(seen) if *seen != c => {
                        return Err(MergeError::ConflictingCell {
                            workload: w.name.clone(),
                            config: c.config.clone(),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }

    let mut merged = RunReport::new("plan", first.instructions, first.stride, first.threads);
    merged.version = first.version;
    for (workload, configs) in order {
        let mut w = WorkloadReport {
            name: workload.clone(),
            job_seconds: 0.0,
            coverage: coverage
                .get(workload.as_str())
                .map(|c| c.to_vec())
                .unwrap_or_default(),
            configs: Vec::with_capacity(configs.len()),
        };
        for config in configs {
            let cell = cells
                .get(&(workload.as_str(), config.as_str()))
                .ok_or_else(|| MergeError::MissingCell {
                    workload: workload.clone(),
                    config: config.clone(),
                })?;
            w.configs.push((*cell).clone());
        }
        merged.workloads.push(w);
    }
    merged.seal();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(config: &str, value: u64) -> ConfigReport {
        ConfigReport {
            config: config.to_string(),
            prefetcher: String::new(),
            counters: vec![("retired".to_string(), value)],
            values: vec![("ipc".to_string(), value as f64 / 2.0)],
        }
    }

    fn partial(workload: &str, configs: Vec<ConfigReport>) -> RunReport {
        let mut r = RunReport::new("plan", 20_000, 16, 2);
        r.workloads.push(WorkloadReport {
            name: workload.to_string(),
            job_seconds: 0.0,
            coverage: Vec::new(),
            configs,
        });
        r.seal();
        r
    }

    fn order() -> Vec<(String, Vec<String>)> {
        vec![
            ("w0".to_string(), vec!["a".to_string(), "b".to_string()]),
            ("w1".to_string(), vec!["a".to_string(), "b".to_string()]),
        ]
    }

    fn four_partials() -> Vec<RunReport> {
        vec![
            partial("w0", vec![cell("a", 1)]),
            partial("w0", vec![cell("b", 2)]),
            partial("w1", vec![cell("a", 3)]),
            partial("w1", vec![cell("b", 4)]),
        ]
    }

    #[test]
    fn merge_is_order_independent() {
        let mut partials = four_partials();
        let forward = merge_plan_reports(&order(), &partials).unwrap();
        partials.reverse();
        let backward = merge_plan_reports(&order(), &partials).unwrap();
        assert_eq!(forward.to_json(), backward.to_json());
        // Rotations too: every arrival order reassembles the same bytes.
        for _ in 0..partials.len() {
            let head = partials.remove(0);
            partials.push(head);
            let rotated = merge_plan_reports(&order(), &partials).unwrap();
            assert_eq!(forward.to_json(), rotated.to_json());
        }
        assert_eq!(forward.fingerprint, forward.compute_fingerprint());
        assert!(forward.session.is_empty());
    }

    #[test]
    fn duplicate_identical_cells_are_accepted() {
        let mut partials = four_partials();
        partials.push(partial("w1", vec![cell("b", 4)]));
        let merged = merge_plan_reports(&order(), &partials).unwrap();
        assert_eq!(merged.workloads.len(), 2);
        assert_eq!(merged.workloads[1].configs.len(), 2);
    }

    #[test]
    fn duplicate_conflicting_cells_are_rejected() {
        let mut partials = four_partials();
        partials.push(partial("w1", vec![cell("b", 999)]));
        let err = merge_plan_reports(&order(), &partials).unwrap_err();
        assert_eq!(
            err,
            MergeError::ConflictingCell {
                workload: "w1".to_string(),
                config: "b".to_string(),
            }
        );
    }

    #[test]
    fn missing_cell_is_reported() {
        let partials = vec![partial("w0", vec![cell("a", 1)])];
        let err = merge_plan_reports(&order(), &partials).unwrap_err();
        assert_eq!(
            err,
            MergeError::MissingCell {
                workload: "w0".to_string(),
                config: "b".to_string(),
            }
        );
    }

    #[test]
    fn knob_mismatch_is_reported() {
        let mut partials = four_partials();
        partials[2].instructions = 40_000;
        let err = merge_plan_reports(&order(), &partials).unwrap_err();
        assert_eq!(
            err,
            MergeError::KnobMismatch {
                field: "instructions",
                expected: 20_000,
                found: 40_000,
            }
        );
    }

    #[test]
    fn non_plan_figures_are_rejected() {
        let mut partials = four_partials();
        partials[0].figure = "fig1".to_string();
        assert!(matches!(
            merge_plan_reports(&order(), &partials),
            Err(MergeError::NotAPlanReport { .. })
        ));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(
            merge_plan_reports(&order(), &[]),
            Err(MergeError::NoPartials)
        );
    }

    #[test]
    fn coverage_survives_the_merge() {
        let mut partials = four_partials();
        partials[2].workloads[0].coverage = vec![("lines_covered".to_string(), 7)];
        let merged = merge_plan_reports(&order(), &partials).unwrap();
        assert_eq!(
            merged.workloads[1].coverage_counter("lines_covered"),
            Some(7)
        );
    }
}
