//! Counter diffs between two run reports.
//!
//! `swip report --diff a.json b.json` loads two [`RunReport`]s and renders
//! the per-counter deltas. The diff is keyed on (workload, config, counter)
//! so reports from differently-scoped runs still line up on their shared
//! subset; entries present on only one side are listed separately instead
//! of being silently dropped.

use crate::run_report::RunReport;

/// One counter that differs between two reports.
#[derive(Clone, PartialEq, Debug)]
pub struct CounterDelta {
    /// Workload the counter belongs to.
    pub workload: String,
    /// Configuration label within the workload.
    pub config: String,
    /// Dotted counter name.
    pub counter: String,
    /// Value in the first (old) report.
    pub before: u64,
    /// Value in the second (new) report.
    pub after: u64,
}

impl CounterDelta {
    /// Signed change from `before` to `after`.
    pub fn delta(&self) -> i128 {
        self.after as i128 - self.before as i128
    }

    /// Relative change, or `None` when `before` is zero.
    pub fn relative(&self) -> Option<f64> {
        if self.before == 0 {
            None
        } else {
            Some(self.delta() as f64 / self.before as f64)
        }
    }
}

/// The structured difference between two run reports.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ReportDiff {
    /// True when both reports carry the same configuration fingerprint.
    pub same_fingerprint: bool,
    /// Counters present in both reports with different values.
    pub changed: Vec<CounterDelta>,
    /// (workload, config, counter) keys only in the first report.
    pub only_in_first: Vec<String>,
    /// (workload, config, counter) keys only in the second report.
    pub only_in_second: Vec<String>,
    /// Counters compared in total (shared keys, changed or not).
    pub compared: u64,
}

impl ReportDiff {
    /// Compares two reports counter-by-counter.
    pub fn between(a: &RunReport, b: &RunReport) -> Self {
        let mut diff = ReportDiff {
            same_fingerprint: !a.fingerprint.is_empty() && a.fingerprint == b.fingerprint,
            ..ReportDiff::default()
        };
        for wa in &a.workloads {
            let Some(wb) = b.workload(&wa.name) else {
                for c in &wa.configs {
                    diff.only_in_first.push(format!("{}/{}", wa.name, c.config));
                }
                continue;
            };
            for ca in &wa.configs {
                let Some(cb) = wb.config(&ca.config) else {
                    diff.only_in_first
                        .push(format!("{}/{}", wa.name, ca.config));
                    continue;
                };
                for (name, before) in &ca.counters {
                    let Some(after) = cb.counter(name) else {
                        diff.only_in_first
                            .push(format!("{}/{}/{}", wa.name, ca.config, name));
                        continue;
                    };
                    diff.compared += 1;
                    if *before != after {
                        diff.changed.push(CounterDelta {
                            workload: wa.name.clone(),
                            config: ca.config.clone(),
                            counter: name.clone(),
                            before: *before,
                            after,
                        });
                    }
                }
                for (name, _) in &cb.counters {
                    if ca.counter(name).is_none() {
                        diff.only_in_second
                            .push(format!("{}/{}/{}", wa.name, ca.config, name));
                    }
                }
            }
            for cb in &wb.configs {
                if wa.config(&cb.config).is_none() {
                    diff.only_in_second
                        .push(format!("{}/{}", wa.name, cb.config));
                }
            }
        }
        for wb in &b.workloads {
            if a.workload(&wb.name).is_none() {
                for c in &wb.configs {
                    diff.only_in_second
                        .push(format!("{}/{}", wb.name, c.config));
                }
            }
        }
        diff
    }

    /// True when every shared counter matched and neither side had extras.
    pub fn is_clean(&self) -> bool {
        self.changed.is_empty() && self.only_in_first.is_empty() && self.only_in_second.is_empty()
    }

    /// Renders the diff as the text `swip report --diff` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.same_fingerprint {
            "fingerprints match: same experiment configuration\n"
        } else {
            "fingerprints differ: reports measure different configurations\n"
        });
        if self.is_clean() {
            out.push_str(&format!(
                "identical: all {} shared counters match\n",
                self.compared
            ));
            return out;
        }
        for d in &self.changed {
            let rel = match d.relative() {
                Some(r) => format!(" ({:+.2}%)", r * 100.0),
                None => String::new(),
            };
            out.push_str(&format!(
                "{}/{}/{}: {} -> {} [{:+}]{}\n",
                d.workload,
                d.config,
                d.counter,
                d.before,
                d.after,
                d.delta(),
                rel
            ));
        }
        for k in &self.only_in_first {
            out.push_str(&format!("only in first: {k}\n"));
        }
        for k in &self.only_in_second {
            out.push_str(&format!("only in second: {k}\n"));
        }
        out.push_str(&format!(
            "{} changed of {} shared counters\n",
            self.changed.len(),
            self.compared
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_report::{ConfigReport, WorkloadReport};

    fn report(cycles: u64) -> RunReport {
        let mut r = RunReport::new("all", 1000, 16, 1);
        r.workloads.push(WorkloadReport {
            name: "w".into(),
            job_seconds: 0.5,
            coverage: Vec::new(),
            configs: vec![ConfigReport {
                config: "ftq2_fdp".into(),
                prefetcher: "fdp".into(),
                counters: vec![("cycles".into(), cycles), ("instructions".into(), 1000)],
                values: vec![],
            }],
        });
        r.seal();
        r
    }

    #[test]
    fn identical_reports_diff_clean() {
        let d = ReportDiff::between(&report(500), &report(500));
        assert!(d.is_clean());
        assert!(d.same_fingerprint);
        assert_eq!(d.compared, 2);
        assert!(d.render().contains("identical"));
    }

    #[test]
    fn changed_counters_are_listed_with_deltas() {
        let d = ReportDiff::between(&report(500), &report(450));
        assert_eq!(d.changed.len(), 1);
        let c = &d.changed[0];
        assert_eq!(c.delta(), -50);
        assert_eq!(c.relative(), Some(-0.1));
        assert!(d.render().contains("w/ftq2_fdp/cycles: 500 -> 450 [-50]"));
    }

    #[test]
    fn asymmetric_keys_are_reported_not_dropped() {
        let a = report(500);
        let mut b = report(500);
        b.workloads[0].configs[0].counters.push(("extra".into(), 7));
        b.workloads[0].configs.push(ConfigReport {
            config: "ftq24_fdp".into(),
            prefetcher: "fdp".into(),
            counters: vec![],
            values: vec![],
        });
        b.seal();
        let d = ReportDiff::between(&a, &b);
        assert!(!d.same_fingerprint, "config matrix changed");
        assert_eq!(
            d.only_in_second,
            vec!["w/ftq2_fdp/extra".to_string(), "w/ftq24_fdp".to_string()]
        );
        assert!(d.only_in_first.is_empty());
        assert!(!d.is_clean());
    }

    #[test]
    fn relative_change_guards_division_by_zero() {
        let d = CounterDelta {
            workload: "w".into(),
            config: "c".into(),
            counter: "k".into(),
            before: 0,
            after: 5,
        };
        assert_eq!(d.relative(), None);
        assert_eq!(d.delta(), 5);
    }
}
