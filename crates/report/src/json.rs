//! A minimal JSON value, writer, and parser.
//!
//! The workspace deliberately carries no external dependencies, so the
//! report layer hand-rolls its JSON the same way `swip-analyze` does — but
//! as a reusable *value* type with a parser, because `swip report` must
//! read its own output back ([`RunReport`](crate::RunReport) round-trips
//! through this module).
//!
//! Deliberate restrictions, matched to the schema we emit:
//!
//! * object keys keep insertion order (diffs stay stable);
//! * integers are `u64` and serialized exactly; floats use Rust's
//!   shortest round-trip `Display`;
//! * non-finite floats serialize as `null` (JSON has no NaN).

use std::fmt;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (every counter in a report).
    U64(u64),
    /// A float (rates, means, seconds).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, accepting integral floats (parsers may widen).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64` (integers widen losslessly enough for reports).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (reports are meant to be
    /// readable and diffable as text).
    pub fn render_pretty(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(f) => write_f64(out, *f),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats recognizable as numbers with a fraction,
        // so the reader maps them back to F64.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "18446744073709551615"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0"); // stays a float
        assert_eq!(Json::parse("2.0").unwrap(), Json::F64(2.0));
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.render();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""A\/""#).unwrap(), Json::Str("A/".into()));
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let v = Json::Obj(vec![
            ("zebra".into(), Json::U64(1)),
            (
                "alpha".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("x".into(), Json::F64(0.5))]),
            ),
        ]);
        let compact = v.render();
        assert_eq!(
            compact,
            r#"{"zebra":1,"alpha":[true,null],"nested":{"x":0.5}}"#
        );
        assert_eq!(Json::parse(&compact).unwrap(), v);
        // Pretty output parses back to the same value.
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": "s", "c": [1], "d": 2.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::F64(3.0).as_u64(), Some(3));
        assert_eq!(Json::F64(3.5).as_u64(), None);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] junk").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{ }").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::Arr(vec![]).render_pretty().trim(), "[]");
    }
}
