//! swip-report: structured observability for swip-fe runs.
//!
//! The bench harness emits seven TSV figures — numbers shaped for the
//! paper's plots, not for machines. This crate adds the machine-readable
//! layer next to them:
//!
//! * [`RunReport`] — a versioned JSON document carrying the run's
//!   configuration fingerprint, session work counters, and every
//!   cache/TLB/front-end/branch/backend counter per (workload, config)
//!   pair. Written as `report.json` beside the TSVs; everything the TSVs
//!   say is recomputable from it.
//! * [`ReportDiff`] — counter-level comparison of two reports, backing
//!   `swip report --diff a.json b.json`.
//! * [`to_chrome_trace`] — exports the cycle-sampled scenario timeline as
//!   Chrome trace-event JSON for `chrome://tracing` / Perfetto.
//! * [`PlanSpec`] — the wire form of an experiment plan (workloads ×
//!   configurations by name), the body `swip-serve` accepts on
//!   `POST /v1/jobs`.
//! * [`merge_plan_reports`] — reassembles sharded partial plan reports
//!   into one plan-order report, byte-identical to a single-node run;
//!   the reduce side of `swip-fleet`'s map-reduce.
//! * [`Json`] — the dependency-free JSON value type used for all of the
//!   above (the workspace is offline; no serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod json;
mod merge;
mod plan;
mod run_report;
mod trace_event;

pub use diff::{CounterDelta, ReportDiff};
pub use json::{Json, JsonError};
pub use merge::{merge_plan_reports, MergeError};
pub use plan::{InsertionSpec, PlanSpec, PlanSpecError};
pub use run_report::{ConfigReport, ReportError, RunReport, WorkloadReport, SCHEMA_VERSION};
pub use trace_event::to_chrome_trace;
