//! The versioned, structured run report.
//!
//! A [`RunReport`] is the machine-readable sibling of the TSV figures: one
//! JSON document per `swip bench` invocation carrying the run's
//! configuration fingerprint, the session's cache/work counters, and —
//! per workload, per simulated configuration — every counter and derived
//! value the figures are built from. Figure TSVs can be recomputed from a
//! report, which is exactly what the golden integration test does.

use std::fmt;

use swip_core::SimReport;

use crate::json::{Json, JsonError};

/// Schema version emitted by this crate; readers reject anything newer.
///
/// v1 → v2 (DESIGN.md §16): per-config entries gained an optional
/// `prefetcher` label (`fdp` / `asmdb` / `mana` / `shadow_btb`). v1
/// documents — which simply lack the key — still parse; the field
/// defaults to empty and is omitted on re-serialization, so a v1 document
/// round-trips unchanged apart from its version stamp.
pub const SCHEMA_VERSION: u64 = 2;

/// A failure loading a [`RunReport`] from JSON.
#[derive(Clone, PartialEq, Debug)]
pub enum ReportError {
    /// The text was not valid JSON.
    Json(JsonError),
    /// The JSON was valid but did not match the schema.
    Schema(String),
    /// The document's schema version is newer than this reader.
    Version(u64),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "{e}"),
            ReportError::Schema(what) => write!(f, "malformed run report: {what}"),
            ReportError::Version(v) => write!(
                f,
                "run report has schema version {v}, this reader supports <= {SCHEMA_VERSION}"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::Json(e)
    }
}

/// Counters and derived values for one (workload, configuration) run.
#[derive(Clone, PartialEq, Debug)]
pub struct ConfigReport {
    /// Configuration label (e.g. `ftq24_asmdb`).
    pub config: String,
    /// Prefetch-mechanism label (`fdp`, `asmdb`, `mana`, `shadow_btb`);
    /// empty when unknown (v1 documents). Omitted from JSON when empty,
    /// so v1 documents round-trip without growing the key.
    pub prefetcher: String,
    /// Exact integer counters, flattened to stable dotted names.
    pub counters: Vec<(String, u64)>,
    /// Derived floating-point values (rates, means, MPKI).
    pub values: Vec<(String, f64)>,
}

impl ConfigReport {
    /// Flattens a [`SimReport`] into named counters and values.
    ///
    /// The counter list is the contract the golden tests pin: every
    /// integer the figure emitters read appears here under a stable name.
    pub fn from_sim(config: impl Into<String>, r: &SimReport) -> Self {
        let f = &r.frontend;
        let b = &r.branch;
        let h = &r.hierarchy;
        let be = &r.backend;
        let cache = |prefix: &str, s: &swip_cache::CacheStats| {
            vec![
                (format!("{prefix}.demand_hits"), s.demand.hits()),
                (format!("{prefix}.demand_misses"), s.demand.misses()),
                (format!("{prefix}.prefetch_hits"), s.prefetch.hits()),
                (format!("{prefix}.prefetch_misses"), s.prefetch.misses()),
                (format!("{prefix}.evictions"), s.evictions.get()),
                (
                    format!("{prefix}.useful_prefetches"),
                    s.useful_prefetches.get(),
                ),
            ]
        };
        let mut counters: Vec<(String, u64)> = vec![
            ("instructions".into(), r.instructions),
            ("prefetch_instructions".into(), r.prefetch_instructions),
            ("cycles".into(), r.cycles),
            ("completed".into(), r.completed as u64),
            ("ftq.cycles".into(), f.cycles.get()),
            ("ftq.s1_cycles".into(), f.s1_cycles.get()),
            ("ftq.s2_cycles".into(), f.s2_cycles.get()),
            ("ftq.s3_cycles".into(), f.s3_cycles.get()),
            ("ftq.empty_cycles".into(), f.empty_cycles.get()),
            (
                "ftq.fill_blocked_cycles".into(),
                f.fill_blocked_cycles.get(),
            ),
            ("ftq.head_stall_cycles".into(), f.head_stall_cycles.get()),
            (
                "ftq.entries_waiting_on_head".into(),
                f.entries_waiting_on_head.get(),
            ),
            (
                "ftq.partially_covered_entries".into(),
                f.partially_covered_entries.get(),
            ),
            ("ftq.head_fetch_count".into(), f.head_fetch_cycles.count()),
            ("ftq.head_fetch_max".into(), f.head_fetch_cycles.max()),
            (
                "ftq.nonhead_fetch_count".into(),
                f.nonhead_fetch_cycles.count(),
            ),
            ("ftq.nonhead_fetch_max".into(), f.nonhead_fetch_cycles.max()),
            ("ftq.blocks_enqueued".into(), f.blocks_enqueued.get()),
            ("ftq.instrs_enqueued".into(), f.instrs_enqueued.get()),
            ("ftq.instrs_decoded".into(), f.instrs_decoded.get()),
            ("ftq.line_requests".into(), f.line_requests.get()),
            (
                "ftq.aliased_line_requests".into(),
                f.aliased_line_requests.get(),
            ),
            ("ftq.mshr_stalls".into(), f.mshr_stalls.get()),
            ("ftq.redirects_execute".into(), f.redirects_execute.get()),
            (
                "ftq.redirects_predecode".into(),
                f.redirects_predecode.get(),
            ),
            ("ftq.mispredicts_cond".into(), f.mispredicts_cond.get()),
            (
                "ftq.mispredicts_indirect".into(),
                f.mispredicts_indirect.get(),
            ),
            ("ftq.mispredicts_return".into(), f.mispredicts_return.get()),
            ("ftq.mispredicts_other".into(), f.mispredicts_other.get()),
            ("ftq.swpf_executed".into(), f.swpf_executed.get()),
            ("ftq.swpf_hinted".into(), f.swpf_hinted.get()),
            ("ftq.swpf_preloaded".into(), f.swpf_preloaded.get()),
            ("ftq.preload_l1_hits".into(), f.preload_l1_hits.get()),
            (
                "ftq.preload_metadata_requests".into(),
                f.preload_metadata_requests.get(),
            ),
            ("branch.resolved".into(), b.resolved.get()),
            ("branch.mispredicts".into(), b.mispredicts.get()),
            ("branch.btb_fills".into(), b.btb_fills.get()),
            ("branch.direction_hits".into(), b.direction.hits()),
            ("branch.direction_total".into(), b.direction.total()),
            ("branch.btb_hits".into(), b.btb.hits()),
            ("branch.btb_total".into(), b.btb.total()),
            ("branch.indirect_hits".into(), b.indirect.hits()),
            ("branch.indirect_total".into(), b.indirect.total()),
        ];
        counters.extend(cache("l1i", &r.l1i));
        counters.extend(cache("l2", &r.l2));
        counters.extend(cache("llc", &r.llc));
        counters.extend([
            ("hier.instr_l1_hits".into(), h.instr_l1_hits.get()),
            ("hier.instr_l2_hits".into(), h.instr_l2_hits.get()),
            ("hier.instr_llc_hits".into(), h.instr_llc_hits.get()),
            ("hier.instr_memory".into(), h.instr_memory.get()),
            ("hier.instr_merged".into(), h.instr_merged.get()),
            ("hier.instr_prefetches".into(), h.instr_prefetches.get()),
            ("hier.data_l1_misses".into(), h.data_l1_misses.get()),
            ("backend.retired".into(), be.retired.get()),
            ("backend.rob_full_cycles".into(), be.rob_full_cycles.get()),
            (
                "backend.issue_idle_cycles".into(),
                be.issue_idle_cycles.get(),
            ),
            ("backend.loads".into(), be.loads.get()),
            (
                "backend.branches_resolved".into(),
                be.branches_resolved.get(),
            ),
            ("timeline.samples".into(), r.timeline.len() as u64),
            ("timeline.dropped".into(), r.timeline_dropped),
        ]);
        let (s1, s2, s3, empty) = f.scenario_fractions();
        let values: Vec<(String, f64)> = vec![
            ("ipc".into(), r.ipc),
            ("effective_ipc".into(), r.effective_ipc),
            ("l1i_mpki".into(), r.l1i_mpki),
            ("s1_frac".into(), s1),
            ("s2_frac".into(), s2),
            ("s3_frac".into(), s3),
            ("empty_frac".into(), empty),
            ("alias_fraction".into(), f.alias_fraction()),
            ("head_fetch_mean".into(), f.head_fetch_cycles.mean()),
            ("nonhead_fetch_mean".into(), f.nonhead_fetch_cycles.mean()),
            ("branch_dir_accuracy".into(), b.direction.rate()),
            ("branch_mpkb".into(), b.mpkb()),
        ];
        ConfigReport {
            config: config.into(),
            prefetcher: String::new(),
            counters,
            values,
        }
    }

    /// Looks up a counter by its dotted name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a derived value by name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![("config".into(), Json::Str(self.config.clone()))];
        if !self.prefetcher.is_empty() {
            pairs.push(("prefetcher".into(), Json::Str(self.prefetcher.clone())));
        }
        pairs.extend([
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "values".into(),
                Json::Obj(
                    self.values
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::F64(*v)))
                        .collect(),
                ),
            ),
        ]);
        Json::Obj(pairs)
    }

    fn from_json(v: &Json) -> Result<Self, ReportError> {
        let config = str_field(v, "config")?.to_string();
        // Absent in v1 documents; optional in v2.
        let prefetcher = match v.get("prefetcher") {
            None => String::new(),
            Some(p) => p
                .as_str()
                .ok_or_else(|| schema("config prefetcher must be a string"))?
                .to_string(),
        };
        let counters = match v.get("counters") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| schema(format!("counter {k} is not a u64")))
                })
                .collect::<Result<_, _>>()?,
            _ => return Err(schema("config entry missing counters object")),
        };
        let values = match v.get("values") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| schema(format!("value {k} is not a number")))
                })
                .collect::<Result<_, _>>()?,
            _ => return Err(schema("config entry missing values object")),
        };
        Ok(ConfigReport {
            config,
            prefetcher,
            counters,
            values,
        })
    }
}

/// One workload's slice of the run: wall-clock and per-config reports.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkloadReport {
    /// Workload name.
    pub name: String,
    /// Simulation seconds spent on this workload's jobs.
    pub job_seconds: f64,
    /// Statically predicted prefetch coverage for this workload's AsmDB
    /// plan, as stable `(name, value)` counters (see `swip-analyze`'s
    /// `PredictedCoverage`). Empty when the run simulated no AsmDB
    /// configuration; omitted from JSON in that case, so schema v1 readers
    /// and fingerprints are unaffected.
    pub coverage: Vec<(String, u64)>,
    /// One entry per simulated configuration, in plan order.
    pub configs: Vec<ConfigReport>,
}

impl WorkloadReport {
    /// The report for configuration `label`, if present.
    pub fn config(&self, label: &str) -> Option<&ConfigReport> {
        self.configs.iter().find(|c| c.config == label)
    }

    /// A predicted-coverage counter by name.
    pub fn coverage_counter(&self, name: &str) -> Option<u64> {
        self.coverage
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("job_seconds".into(), Json::F64(self.job_seconds)),
        ];
        if !self.coverage.is_empty() {
            pairs.push((
                "coverage".into(),
                Json::Obj(
                    self.coverage
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v)))
                        .collect(),
                ),
            ));
        }
        pairs.push((
            "configs".into(),
            Json::Arr(self.configs.iter().map(ConfigReport::to_json).collect()),
        ));
        Json::Obj(pairs)
    }

    fn from_json(v: &Json) -> Result<Self, ReportError> {
        let coverage = match v.get("coverage") {
            None => Vec::new(),
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| schema(format!("coverage counter {k} is not a u64")))
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err(schema("workload coverage must be an object")),
        };
        Ok(WorkloadReport {
            name: str_field(v, "name")?.to_string(),
            job_seconds: v
                .get("job_seconds")
                .and_then(Json::as_f64)
                .ok_or_else(|| schema("workload missing job_seconds"))?,
            coverage,
            configs: v
                .get("configs")
                .and_then(Json::as_arr)
                .ok_or_else(|| schema("workload missing configs array"))?
                .iter()
                .map(ConfigReport::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The versioned run report: scale knobs, fingerprint, session counters,
/// and per-workload results.
#[derive(Clone, PartialEq, Debug)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this crate).
    pub version: u64,
    /// The figure (or `all`) this run emitted.
    pub figure: String,
    /// Dynamic instructions per workload.
    pub instructions: u64,
    /// Workload suite stride.
    pub stride: u64,
    /// Worker threads used.
    pub threads: u64,
    /// FNV-1a fingerprint of the run configuration (version, figure,
    /// knobs, workload/config matrix) as 16 hex digits; two reports with
    /// equal fingerprints measured the same experiment.
    pub fingerprint: String,
    /// Session cache/work counters (name → count).
    pub session: Vec<(String, u64)>,
    /// Per-workload results, in suite order.
    pub workloads: Vec<WorkloadReport>,
}

impl RunReport {
    /// Creates an empty report for the given run knobs; push workloads,
    /// then call [`RunReport::seal`] to stamp the fingerprint.
    pub fn new(figure: impl Into<String>, instructions: u64, stride: u64, threads: u64) -> Self {
        RunReport {
            version: SCHEMA_VERSION,
            figure: figure.into(),
            instructions,
            stride,
            threads,
            fingerprint: String::new(),
            session: Vec::new(),
            workloads: Vec::new(),
        }
    }

    /// Computes and stores the configuration fingerprint.
    pub fn seal(&mut self) {
        self.fingerprint = self.compute_fingerprint();
    }

    /// The FNV-1a hash of the run configuration (not the measurements):
    /// version, figure, scale knobs, and the workload × configuration
    /// matrix. Counter values are deliberately excluded so two runs of the
    /// same experiment are directly diffable.
    pub fn compute_fingerprint(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0xff; // field separator
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(&self.version.to_le_bytes());
        eat(self.figure.as_bytes());
        eat(&self.instructions.to_le_bytes());
        eat(&self.stride.to_le_bytes());
        for w in &self.workloads {
            eat(w.name.as_bytes());
            for c in &w.configs {
                eat(c.config.as_bytes());
            }
        }
        format!("{hash:016x}")
    }

    /// The workload entry named `name`, if present.
    pub fn workload(&self, name: &str) -> Option<&WorkloadReport> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// A session counter by name.
    pub fn session_counter(&self, name: &str) -> Option<u64> {
        self.session
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Serializes to the pretty JSON document written next to the TSVs.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }

    /// The report as a [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::U64(self.version)),
            ("figure".into(), Json::Str(self.figure.clone())),
            ("instructions".into(), Json::U64(self.instructions)),
            ("stride".into(), Json::U64(self.stride)),
            ("threads".into(), Json::U64(self.threads)),
            ("fingerprint".into(), Json::Str(self.fingerprint.clone())),
            (
                "session".into(),
                Json::Obj(
                    self.session
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "workloads".into(),
                Json::Arr(self.workloads.iter().map(WorkloadReport::to_json).collect()),
            ),
        ])
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// [`ReportError::Json`] on malformed JSON, [`ReportError::Version`]
    /// on a newer schema, [`ReportError::Schema`] on shape mismatches.
    pub fn from_json_str(text: &str) -> Result<Self, ReportError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Parses a report from a [`Json`] value.
    ///
    /// # Errors
    ///
    /// See [`RunReport::from_json_str`].
    pub fn from_json_value(v: &Json) -> Result<Self, ReportError> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| schema("missing version"))?;
        if version > SCHEMA_VERSION {
            return Err(ReportError::Version(version));
        }
        let session = match v.get("session") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| schema(format!("session counter {k} is not a u64")))
                })
                .collect::<Result<_, _>>()?,
            _ => return Err(schema("missing session object")),
        };
        Ok(RunReport {
            version,
            figure: str_field(v, "figure")?.to_string(),
            instructions: u64_field(v, "instructions")?,
            stride: u64_field(v, "stride")?,
            threads: u64_field(v, "threads")?,
            fingerprint: str_field(v, "fingerprint")?.to_string(),
            session,
            workloads: v
                .get("workloads")
                .and_then(Json::as_arr)
                .ok_or_else(|| schema("missing workloads array"))?
                .iter()
                .map(WorkloadReport::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// A short human-readable summary (the default `swip report` output).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run report v{} — figure {}, {} instructions, stride {}, {} thread(s)\n",
            self.version, self.figure, self.instructions, self.stride, self.threads
        ));
        out.push_str(&format!("fingerprint: {}\n", self.fingerprint));
        for (k, v) in &self.session {
            out.push_str(&format!("session.{k}: {v}\n"));
        }
        for w in &self.workloads {
            let configs: Vec<&str> = w.configs.iter().map(|c| c.config.as_str()).collect();
            out.push_str(&format!(
                "{}: {} config(s) [{}], {:.2}s\n",
                w.name,
                w.configs.len(),
                configs.join(", "),
                w.job_seconds
            ));
        }
        out
    }
}

fn schema(what: impl Into<String>) -> ReportError {
    ReportError::Schema(what.into())
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, ReportError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| schema(format!("missing string field {key}")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, ReportError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| schema(format!("missing u64 field {key}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("all", 20_000, 16, 2);
        r.session = vec![("trace_generations".into(), 3), ("sim_runs".into(), 18)];
        r.workloads.push(WorkloadReport {
            name: "secret_srv12".into(),
            job_seconds: 1.25,
            coverage: Vec::new(),
            configs: vec![ConfigReport {
                config: "ftq2_fdp".into(),
                prefetcher: "fdp".into(),
                counters: vec![("cycles".into(), 123_456), ("completed".into(), 1)],
                values: vec![("ipc".into(), 1.75)],
            }],
        });
        r.seal();
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample();
        let text = r.to_json();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        // And the fingerprint still verifies after the round trip.
        assert_eq!(back.compute_fingerprint(), back.fingerprint);
    }

    #[test]
    fn coverage_round_trips_and_stays_out_of_empty_documents() {
        let mut r = sample();
        assert!(!r.to_json().contains("\"coverage\""));
        r.workloads[0].coverage = vec![("sites".into(), 7), ("useful_sites".into(), 5)];
        let text = r.to_json();
        assert!(text.contains("\"coverage\""));
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.workloads[0].coverage_counter("useful_sites"), Some(5));
        assert_eq!(back.workloads[0].coverage_counter("nope"), None);
        // Coverage is a prediction, not configuration: fingerprints ignore it.
        assert_eq!(r.compute_fingerprint(), sample().fingerprint);
    }

    #[test]
    fn fingerprint_tracks_configuration_not_measurements() {
        let a = sample();
        let mut b = sample();
        b.workloads[0].configs[0].counters[0].1 += 1; // a measurement
        b.seal();
        assert_eq!(a.fingerprint, b.fingerprint);
        let mut c = sample();
        c.instructions = 40_000; // a knob
        c.seal();
        assert_ne!(a.fingerprint, c.fingerprint);
        assert_eq!(a.fingerprint.len(), 16);
    }

    #[test]
    fn lookups() {
        let r = sample();
        assert_eq!(r.session_counter("sim_runs"), Some(18));
        assert_eq!(r.session_counter("nope"), None);
        let w = r.workload("secret_srv12").unwrap();
        let c = w.config("ftq2_fdp").unwrap();
        assert_eq!(c.counter("cycles"), Some(123_456));
        assert_eq!(c.value("ipc"), Some(1.75));
        assert_eq!(c.counter("nope"), None);
    }

    #[test]
    fn prefetcher_round_trips_and_stays_out_when_unknown() {
        let r = sample();
        let text = r.to_json();
        assert!(text.contains("\"prefetcher\": \"fdp\""));
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back.workloads[0].configs[0].prefetcher, "fdp");
        // A config whose mechanism is unknown (v1 documents, from_sim
        // before stamping) omits the key entirely.
        let mut bare = sample();
        bare.workloads[0].configs[0].prefetcher = String::new();
        let text = bare.to_json();
        assert!(!text.contains("\"prefetcher\""));
        assert_eq!(RunReport::from_json_str(&text).unwrap(), bare);
    }

    #[test]
    fn v1_documents_still_parse() {
        // A schema-v1 document: no prefetcher keys, version stamp 1.
        let mut r = sample();
        r.version = 1;
        r.workloads[0].configs[0].prefetcher = String::new();
        r.seal();
        let text = r.to_json();
        assert!(text.contains("\"version\": 1"));
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back.version, 1);
        assert_eq!(back.workloads[0].configs[0].prefetcher, "");
        assert_eq!(
            back.workloads[0].configs[0].counter("cycles"),
            Some(123_456)
        );
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut r = sample();
        r.version = SCHEMA_VERSION + 1;
        let err = RunReport::from_json_str(&r.to_json()).unwrap_err();
        assert_eq!(err, ReportError::Version(SCHEMA_VERSION + 1));
    }

    #[test]
    fn schema_violations_are_named() {
        let err = RunReport::from_json_str("{\"version\": 1}").unwrap_err();
        assert!(matches!(err, ReportError::Schema(_)), "{err:?}");
        let err = RunReport::from_json_str("not json").unwrap_err();
        assert!(matches!(err, ReportError::Json(_)), "{err:?}");
        let err = RunReport::from_json_str(
            r#"{"version":1,"figure":"all","instructions":1,"stride":1,"threads":1,
                "fingerprint":"x","session":{"a": -3},"workloads":[]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, ReportError::Schema(_)), "{err:?}");
    }

    #[test]
    fn from_sim_flattens_the_figure_counters() {
        use swip_core::{SimConfig, Simulator};
        use swip_trace::TraceBuilder;

        let mut b = TraceBuilder::new("flat");
        for _ in 0..400 {
            b.alu();
        }
        let sim = Simulator::new(SimConfig::test_scale()).run(&b.finish());
        let c = ConfigReport::from_sim("ftq24_fdp", &sim);
        assert_eq!(c.counter("instructions"), Some(sim.instructions));
        assert_eq!(c.counter("cycles"), Some(sim.cycles));
        assert_eq!(
            c.counter("ftq.head_stall_cycles"),
            Some(sim.frontend.head_stall_cycles.get())
        );
        assert_eq!(
            c.counter("l1i.demand_misses"),
            Some(sim.l1i.demand.misses())
        );
        assert_eq!(
            c.counter("backend.retired"),
            Some(sim.backend.retired.get())
        );
        assert_eq!(c.value("ipc"), Some(sim.ipc));
        let (s1, ..) = sim.frontend.scenario_fractions();
        assert_eq!(c.value("s1_frac"), Some(s1));
        // Scenario cycles partition total cycles in the flattened view too.
        let sum = [
            "ftq.s1_cycles",
            "ftq.s2_cycles",
            "ftq.s3_cycles",
            "ftq.empty_cycles",
        ]
        .iter()
        .map(|k| c.counter(k).unwrap())
        .sum::<u64>();
        assert_eq!(c.counter("ftq.cycles"), Some(sum));
    }
}
